"""Requests and servers for the farm model."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError, InvariantViolation

__all__ = ["Request", "Server"]


@dataclass(frozen=True, slots=True, order=True)
class Request:
    """A client request.

    Ordered by ``(created_tick, request_id)`` so that "oldest first"
    admission (the CAPPED acceptance rule) is a plain sort.
    """

    created_tick: int
    request_id: int

    def latency(self, completed_tick: int) -> int:
        """Ticks from creation to completion (the ball's waiting time)."""
        if completed_tick < self.created_tick:
            raise ValueError("completion cannot precede creation")
        return completed_tick - self.created_tick


class Server:
    """A server with a bounded FIFO queue and unit service rate.

    Parameters
    ----------
    capacity:
        Maximum queued requests. ``None`` means unbounded; ``0`` is legal
        and models a cordoned server that admits nothing (useful as the
        steady-state picture of a down server).

    A server can also be crashed outright with :meth:`fail` — a down server
    admits nothing and serves nothing until :meth:`recover`, and optionally
    loses its queued requests at crash time (wiped buffers).
    """

    __slots__ = (
        "capacity",
        "down",
        "sealed",
        "_queue",
        "completed",
        "rejected",
        "peak_queue",
        "_capacity_high_water",
    )

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.down = False
        self.sealed = False
        self._queue: deque[Request] = deque()
        self.completed = 0
        self.rejected = 0
        self.peak_queue = 0
        self._capacity_high_water = capacity

    @property
    def queue_length(self) -> int:
        """Requests currently queued."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        """Remaining queue slots (a large sentinel when unbounded, 0 when down).

        Clamped at zero: after a capacity degradation the queue may hold
        more requests than the current capacity allows. Sealed servers
        (draining before removal, see :meth:`seal`) admit nothing either.
        """
        if self.down or self.sealed:
            return 0
        if self.capacity is None:
            return 2**31
        return max(self.capacity - len(self._queue), 0)

    def admit(self, requests: list[Request]) -> list[Request]:
        """Admit the oldest requests up to capacity; return the rejects.

        Rejections due to the server being down are not counted in
        ``rejected`` (that counter tracks capacity pressure, not outages).
        """
        candidates = sorted(requests)
        if self.down or self.sealed:
            # Like outages, sealing is not capacity pressure: rejections
            # here do not touch the ``rejected`` counter.
            return candidates
        take = min(len(candidates), self.free_slots)
        for request in candidates[:take]:
            self._queue.append(request)
        self.rejected += len(candidates) - take
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)
        return candidates[take:]

    def serve(self) -> Request | None:
        """Complete the queue head, if any (down servers serve nothing)."""
        if self.down or not self._queue:
            return None
        self.completed += 1
        return self._queue.popleft()

    def fail(self, wipe: bool = False) -> list[Request]:
        """Crash the server. Returns the requests evicted by a wiped buffer.

        With ``wipe=False`` the queue survives frozen and resumes service on
        :meth:`recover`. With ``wipe=True`` the queue is emptied and its
        contents returned so the caller can decide whether they are lost or
        re-enter the pending pool.
        """
        self.down = True
        if not wipe:
            return []
        evicted = list(self._queue)
        self._queue.clear()
        return evicted

    def recover(self) -> None:
        """Bring the server back up."""
        self.down = False

    def seal(self) -> None:
        """Stop admissions while the queue drains (pre-removal state).

        A sealed server keeps serving (unlike :meth:`fail`), so its queue
        empties in at most ``queue_length`` ticks, after which it can be
        removed with the ``drain`` policy.
        """
        self.sealed = True

    def unseal(self) -> None:
        """Reopen a sealed server for admissions (an aborted drain)."""
        self.sealed = False

    def set_capacity(self, capacity: int | None) -> None:
        """Change the queue capacity mid-run (degradation faults).

        The queue is never truncated; an over-full server just reports zero
        free slots until it drains. The high-water capacity (largest ever
        configured) is what :meth:`check_invariants` bounds the queue by.
        """
        if capacity is not None and capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        if capacity is None:
            self._capacity_high_water = None
        elif self._capacity_high_water is not None:
            self._capacity_high_water = max(self._capacity_high_water, capacity)

    def get_state(self) -> dict:
        """Checkpoint the full server state.

        The FIFO queue is serialised as ``(created_tick, request_id)``
        pairs in queue order, so per-request ages (and hence latencies on
        completion) survive a restore exactly.
        """
        return {
            "capacity": self.capacity,
            "down": self.down,
            "sealed": self.sealed,
            "queue": [[request.created_tick, request.request_id] for request in self._queue],
            "completed": self.completed,
            "rejected": self.rejected,
            "peak_queue": self.peak_queue,
            "capacity_high_water": self._capacity_high_water,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state`."""
        capacity = state["capacity"]
        self.capacity = None if capacity is None else int(capacity)
        self.down = bool(state["down"])
        # Older snapshots predate sealing; absent means open.
        self.sealed = bool(state.get("sealed", False))
        self._queue = deque(
            Request(created_tick=int(tick), request_id=int(request_id))
            for tick, request_id in state["queue"]
        )
        self.completed = int(state["completed"])
        self.rejected = int(state["rejected"])
        self.peak_queue = int(state["peak_queue"])
        high_water = state["capacity_high_water"]
        self._capacity_high_water = None if high_water is None else int(high_water)
        self.check_invariants()

    def check_invariants(self) -> None:
        """The queue never exceeds the high-water capacity."""
        if self._capacity_high_water is not None and len(self._queue) > self._capacity_high_water:
            raise InvariantViolation(
                f"queue length {len(self._queue)} exceeds high-water capacity "
                f"{self._capacity_high_water}"
            )
