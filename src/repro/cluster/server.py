"""Requests and servers for the farm model."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Request", "Server"]


@dataclass(frozen=True, slots=True, order=True)
class Request:
    """A client request.

    Ordered by ``(created_tick, request_id)`` so that "oldest first"
    admission (the CAPPED acceptance rule) is a plain sort.
    """

    created_tick: int
    request_id: int

    def latency(self, completed_tick: int) -> int:
        """Ticks from creation to completion (the ball's waiting time)."""
        if completed_tick < self.created_tick:
            raise ValueError("completion cannot precede creation")
        return completed_tick - self.created_tick


class Server:
    """A server with a bounded FIFO queue and unit service rate.

    Parameters
    ----------
    capacity:
        Maximum queued requests (``None`` for unbounded).
    """

    __slots__ = ("capacity", "_queue", "completed", "rejected", "peak_queue")

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[Request] = deque()
        self.completed = 0
        self.rejected = 0
        self.peak_queue = 0

    @property
    def queue_length(self) -> int:
        """Requests currently queued."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        """Remaining queue slots (a large sentinel when unbounded)."""
        if self.capacity is None:
            return 2**31
        return self.capacity - len(self._queue)

    def admit(self, requests: list[Request]) -> list[Request]:
        """Admit the oldest requests up to capacity; return the rejects."""
        candidates = sorted(requests)
        take = min(len(candidates), self.free_slots)
        for request in candidates[:take]:
            self._queue.append(request)
        self.rejected += len(candidates) - take
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)
        return candidates[take:]

    def serve(self) -> Request | None:
        """Complete the queue head, if any."""
        if not self._queue:
            return None
        self.completed += 1
        return self._queue.popleft()
