"""The server farm: clients, dispatcher, servers, latency accounting."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.policies import RoutingPolicy
from repro.cluster.server import Request, Server
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng
from repro.stats.streaming import Histogram, RunningStats
from repro.workloads.arrivals import ArrivalProcess, DeterministicArrivals

__all__ = ["FarmStats", "ServerFarm"]


@dataclass(frozen=True)
class FarmStats:
    """Summary of a farm run.

    Attributes
    ----------
    ticks:
        Simulated ticks.
    completed:
        Requests served to completion.
    mean_latency / max_latency / p99_latency:
        Latency (creation → completion) statistics over completed
        requests, in ticks.
    mean_pending:
        Time-average of the pending (unrouted) request count.
    peak_pending:
        Largest pending count observed.
    peak_queue:
        Largest single-server queue observed.
    throughput:
        Completed requests per tick.
    """

    ticks: int
    completed: int
    mean_latency: float
    max_latency: int
    p99_latency: int
    mean_pending: float
    peak_pending: int
    peak_queue: int
    throughput: float


class ServerFarm:
    """A farm of servers driven by a routing policy.

    Per tick: new requests arrive and join the pending set; the policy
    probes one server per pending request; each server admits the oldest
    probed requests up to its capacity (rejects return to pending); every
    busy server completes one request.

    Parameters
    ----------
    num_servers:
        Number of servers.
    capacity:
        Per-server queue bound: a shared int, ``None`` for unbounded, or a
        sequence of per-server bounds (heterogeneous farm).
    policy:
        A :class:`~repro.cluster.policies.RoutingPolicy`.
    workload:
        Arrival process; defaults to deterministic ``rate·num_servers``
        per tick.
    rate:
        Convenience injection rate used when ``workload`` is omitted.
    observers:
        Optional engine observers (e.g. a
        :class:`~repro.faults.FaultInjector` or
        :class:`~repro.engine.observers.TraceRecorder`); each is notified
        with a :class:`~repro.engine.metrics.RoundRecord` after every tick,
        mirroring the driver pipeline used by the ball processes.
    """

    def __init__(
        self,
        num_servers: int,
        capacity,
        policy: RoutingPolicy,
        workload: ArrivalProcess | None = None,
        rate: float = 0.5,
        rng=None,
        observers: Sequence = (),
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError(f"need at least one server, got {num_servers}")
        if capacity is None or isinstance(capacity, int):
            capacities = [capacity] * num_servers
        else:
            capacities = list(capacity)
            if len(capacities) != num_servers:
                raise ConfigurationError(
                    f"need {num_servers} per-server capacities, got {len(capacities)}"
                )
        self.servers = [Server(cap) for cap in capacities]
        self.policy = policy
        self.workload = (
            workload
            if workload is not None
            else DeterministicArrivals(n=num_servers, lam=rate)
        )
        self.rng = resolve_rng(rng, "farm")
        self.observers = list(observers)
        self.pending: list[Request] = []
        self.tick = 0
        self._next_id = 0
        self.latency_stats = RunningStats()
        self.latency_histogram = Histogram()
        self.pending_stats = RunningStats()
        self.peak_pending = 0
        self.completed = 0

    @property
    def num_servers(self) -> int:
        """Number of servers in the farm."""
        return len(self.servers)

    @property
    def n(self) -> int:
        """Alias for :attr:`num_servers` (RoundProcess protocol)."""
        return len(self.servers)

    # -- elastic membership (repro.churn) -----------------------------------

    def add_servers(self, count: int, capacity=...) -> np.ndarray:
        """Append ``count`` fresh empty servers (a join burst).

        ``capacity`` defaults to inheritance: unbounded if any existing
        server is unbounded, else the largest existing capacity — the same
        rule :meth:`repro.balls.bin_array.BinArray.grow` applies. The
        workload is untouched (traffic is exogenous; the configured rate
        does not rise because servers joined). Returns the new indices.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if capacity is ...:
            existing = [server.capacity for server in self.servers]
            capacity = None if any(c is None for c in existing) else max(existing)
        old = len(self.servers)
        self.servers.extend(Server(capacity) for _ in range(count))
        return np.arange(old, len(self.servers), dtype=np.int64)

    def remove_servers(self, indices, policy: str = "rehash") -> int:
        """Remove servers by index (a leave burst). Returns displaced requests.

        ``rehash``: queued requests of removed servers re-enter the pending
        set (merged oldest-first, so admission order is preserved).
        ``drop``: queued requests are discarded (counted in the return).
        ``drain``: the servers must already be empty (seal first, wait for
        their queues to drain). Indices compact exactly like bin indices —
        see :func:`repro.churn.injector.removal_mapping`.
        """
        from repro.balls.bin_array import SHRINK_POLICIES

        if policy not in SHRINK_POLICIES:
            raise ConfigurationError(f"policy must be one of {SHRINK_POLICIES}, got {policy!r}")
        indices = np.unique(np.atleast_1d(np.asarray(indices, dtype=np.int64)))
        if indices.size == 0:
            return 0
        if indices[0] < 0 or indices[-1] >= len(self.servers):
            raise ConfigurationError(
                f"server indices must be in [0, {len(self.servers)}), got "
                f"[{indices[0]}, {indices[-1]}]"
            )
        if indices.size >= len(self.servers):
            raise ConfigurationError("cannot remove every server")
        removed = set(int(i) for i in indices)
        displaced: list[Request] = []
        for index in removed:
            displaced.extend(self.servers[index]._queue)
        if policy == "drain" and displaced:
            raise ConfigurationError(
                f"drain removal needs empty queues, but {len(displaced)} requests remain"
            )
        if policy == "rehash" and displaced:
            self.pending.extend(displaced)
            self.pending.sort()
        self.servers = [s for i, s in enumerate(self.servers) if i not in removed]
        return len(displaced)

    def seal_servers(self, indices) -> None:
        """Seal servers for draining: no admissions, service continues."""
        for index in np.atleast_1d(np.asarray(indices, dtype=np.int64)):
            self.servers[int(index)].seal()

    def unseal_servers(self, indices) -> None:
        """Reopen sealed servers for admissions."""
        for index in np.atleast_1d(np.asarray(indices, dtype=np.int64)):
            self.servers[int(index)].unseal()

    def _generate(self) -> int:
        count = self.workload.arrivals(self.tick, self.rng)
        for _ in range(count):
            self.pending.append(Request(created_tick=self.tick, request_id=self._next_id))
            self._next_id += 1
        return count

    def step(self) -> RoundRecord:
        """Advance one tick: arrive → route → admit → serve.

        Returns a :class:`~repro.engine.metrics.RoundRecord` (also passed to
        any registered observers), so the farm speaks the same per-round
        protocol as the ball-process simulators: ``pool_size`` is the
        pending-set size, ``deleted`` the completions this tick, and the
        wait arrays hold the latencies of requests completed this tick.
        """
        self.tick += 1
        arrivals = self._generate()

        thrown = len(self.pending)
        accepted = 0
        if self.pending:
            probes = self.policy.route(self.pending, self.servers, self.rng)
            if len(probes) != len(self.pending):
                raise InvariantViolation(
                    f"policy routed {len(probes)} of {len(self.pending)} requests"
                )
            per_server: dict[int, list[Request]] = defaultdict(list)
            for request, index in zip(self.pending, probes):
                per_server[int(index)].append(request)
            rejected: list[Request] = []
            for index, batch in per_server.items():
                rejected.extend(self.servers[index].admit(batch))
            rejected.sort()
            accepted = thrown - len(rejected)
            self.pending = rejected

        latencies: list[int] = []
        for server in self.servers:
            request = server.serve()
            if request is not None:
                latency = request.latency(self.tick)
                self.latency_stats.add(latency)
                self.latency_histogram.add(latency)
                self.completed += 1
                latencies.append(latency)

        self.pending_stats.add(len(self.pending))
        if len(self.pending) > self.peak_pending:
            self.peak_pending = len(self.pending)

        if latencies:
            wait_values, wait_counts = np.unique(
                np.asarray(latencies, dtype=np.int64), return_counts=True
            )
        else:
            wait_values = wait_counts = np.empty(0, dtype=np.int64)
        queue_lengths = [s.queue_length for s in self.servers]
        record = RoundRecord(
            round=self.tick,
            arrivals=arrivals,
            thrown=thrown,
            accepted=accepted,
            deleted=len(latencies),
            pool_size=len(self.pending),
            total_load=sum(queue_lengths),
            max_load=max(queue_lengths),
            wait_values=wait_values,
            wait_counts=wait_counts,
        )
        for observer in self.observers:
            observer.on_round(record, self)
        return record

    def run(self, ticks: int) -> FarmStats:
        """Advance ``ticks`` ticks and return the summary statistics."""
        if ticks < 1:
            raise ConfigurationError(f"ticks must be positive, got {ticks}")
        for _ in range(ticks):
            self.step()
        return self.stats()

    def stats(self) -> FarmStats:
        """Summary statistics over everything simulated so far."""
        has_latency = self.latency_histogram.total > 0
        return FarmStats(
            ticks=self.tick,
            completed=self.completed,
            mean_latency=self.latency_stats.mean,
            max_latency=self.latency_histogram.max if has_latency else 0,
            p99_latency=self.latency_histogram.quantile(0.99) if has_latency else 0,
            mean_pending=self.pending_stats.mean,
            peak_pending=self.peak_pending,
            peak_queue=max(s.peak_queue for s in self.servers),
            throughput=self.completed / self.tick if self.tick else 0.0,
        )

    def get_state(self) -> dict:
        """Checkpoint the full farm state (servers, pending, stats, RNG)."""
        return {
            "tick": self.tick,
            "next_id": self._next_id,
            "pending": [[request.created_tick, request.request_id] for request in self.pending],
            "servers": [server.get_state() for server in self.servers],
            "rng": self.rng.bit_generator.state,
            "latency_stats": self.latency_stats.get_state(),
            "latency_histogram": self.latency_histogram.get_state(),
            "pending_stats": self.pending_stats.get_state(),
            "peak_pending": self.peak_pending,
            "completed": self.completed,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state`.

        Membership is adopted from the snapshot: a state captured after
        churn resized the farm rebuilds the server list at the snapshot's
        size (each server's own state carries its capacity).
        """
        server_states = state["servers"]
        if len(server_states) != len(self.servers):
            self.servers = [Server(None) for _ in server_states]
        self.tick = int(state["tick"])
        self._next_id = int(state["next_id"])
        self.pending = [
            Request(created_tick=int(tick), request_id=int(request_id))
            for tick, request_id in state["pending"]
        ]
        for server, server_state in zip(self.servers, server_states):
            server.set_state(server_state)
        self.rng.bit_generator.state = state["rng"]
        self.latency_stats.set_state(state["latency_stats"])
        self.latency_histogram.set_state(state["latency_histogram"])
        self.pending_stats.set_state(state["pending_stats"])
        self.peak_pending = int(state["peak_pending"])
        self.completed = int(state["completed"])
        self.check_invariants()

    def check_invariants(self) -> None:
        """Pending requests must be unique and server queues within bounds.

        Queue bounds are the per-server *high-water* capacities (see
        :meth:`Server.check_invariants`), so the check holds through
        capacity-degradation fault windows.
        """
        ids = [r.request_id for r in self.pending]
        if len(ids) != len(set(ids)):
            raise InvariantViolation("duplicate request in pending set")
        for server in self.servers:
            server.check_invariants()
