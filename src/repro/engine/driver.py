"""Burn-in/measurement execution of round-based processes.

:class:`SimulationDriver` is the single entry point used by examples,
benchmarks, and the experiment harness: it advances a process through a
burn-in phase (statistics discarded, observers still notified), then through
a measurement window feeding a :class:`~repro.engine.metrics.MetricsCollector`,
and returns a :class:`SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.engine.metrics import MetricsCollector, MetricsSummary, RoundRecord
from repro.engine.observers import Observer
from repro.engine.stability import is_stationary
from repro.errors import ConfigurationError
from repro.telemetry.runtime import current as _telemetry_current, span as _span

__all__ = ["RoundProcess", "SimulationDriver", "SimulationResult"]


@runtime_checkable
class RoundProcess(Protocol):
    """Minimal interface every simulated process implements."""

    n: int

    def step(self) -> RoundRecord:
        """Advance one round and report what happened."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a driver run.

    Attributes
    ----------
    summary:
        Aggregate statistics over the measurement window.
    pool_series:
        Per-round pool sizes over the measurement window.
    burn_in / measured:
        The phase lengths actually executed.
    stationary:
        Result of the drift diagnostic on the measured pool series.
        **None contract:** ``None`` means the diagnostic was *not run* —
        the driver was configured with ``measure < 4`` (the two-half drift
        test needs at least 2 points per half), so no stationarity claim
        is made either way. Consumers must treat ``None`` as "unknown",
        never as "not stationary"; aggregations (e.g.
        ``PointResult.stationary_fraction``) skip such replicates.
    """

    summary: MetricsSummary
    pool_series: np.ndarray
    burn_in: int
    measured: int
    stationary: bool | None

    @property
    def normalized_pool(self) -> float:
        """Mean pool size divided by n (Figure 4's y-axis)."""
        return self.summary.normalized_pool

    @property
    def avg_wait(self) -> float:
        """Average waiting time (Figure 5, triangles)."""
        return self.summary.avg_wait

    @property
    def max_wait(self) -> int:
        """Maximum waiting time (Figure 5, points)."""
        return self.summary.max_wait


class SimulationDriver:
    """Runs a process through burn-in then measurement.

    Parameters
    ----------
    burn_in:
        Rounds to discard before measuring.
    measure:
        Rounds in the measurement window (the paper averages over 1000).
    observers:
        Optional callbacks notified after *every* round, including burn-in.
    """

    def __init__(
        self,
        burn_in: int,
        measure: int,
        observers: Sequence[Observer] = (),
    ) -> None:
        if burn_in < 0:
            raise ConfigurationError(f"burn_in must be non-negative, got {burn_in}")
        if measure < 1:
            raise ConfigurationError(f"measure must be positive, got {measure}")
        self.burn_in = burn_in
        self.measure = measure
        self.observers = list(observers)
        # The drift diagnostic splits the measured series into two halves
        # and needs at least 2 points in each; decide once at configuration
        # time instead of re-checking the series length on every run.
        self._diagnose_stationarity = measure >= 4

    def _notify(self, record: RoundRecord, process: Any) -> None:
        for observer in self.observers:
            observer.on_round(record, process)

    @staticmethod
    def _theory_normalized_pool(process: Any) -> float | None:
        """Section V reference pool curve for ``process``, when defined.

        Only capped processes with an integer capacity and λ < 1 have the
        ``1/c·ln(1/(1−λ)) + 1`` reference; anything else returns None and
        the deviation gauge is simply not emitted.
        """
        capacity = getattr(process, "capacity", None)
        lam = getattr(process, "lam", None)
        if capacity is None or lam is None or np.ndim(capacity) != 0:
            return None
        if not (0 <= lam < 1) or int(capacity) < 1:
            return None
        from repro.core.theory import empirical_pool_curve

        return empirical_pool_curve(int(capacity), float(lam))

    def run(self, process: RoundProcess) -> SimulationResult:
        """Execute the configured phases on ``process`` and summarise."""
        with _span("burn_in", component="driver"):
            for _ in range(self.burn_in):
                record = process.step()
                self._notify(record, process)

        tel = _telemetry_current()
        theory_pool = self._theory_normalized_pool(process) if tel is not None else None
        collector = MetricsCollector(n=process.n)
        with _span("measure", component="driver"):
            for _ in range(self.measure):
                record = process.step()
                self._notify(record, process)
                collector.observe(record)
                if tel is not None:
                    normalized = record.pool_size / process.n
                    tel.set_gauge("pool_size_normalized", normalized)
                    if theory_pool:
                        tel.set_gauge("pool_size_over_theory", normalized / theory_pool)

        series = collector.pool_series
        stationary = is_stationary(series) if self._diagnose_stationarity else None
        return SimulationResult(
            summary=collector.summary(),
            pool_series=series,
            burn_in=self.burn_in,
            measured=self.measure,
            stationary=stationary,
        )

    def run_batched(self, process: Any) -> list[SimulationResult]:
        """Execute the phases on a batched process; one result per replicate.

        ``process.step()`` must return a *list* of per-replicate
        :class:`RoundRecord` objects (see
        :class:`~repro.kernels.batched.BatchedCappedProcess`). Each
        replicate gets its own :class:`MetricsCollector`, so the returned
        results are exactly what ``run`` would have produced on R separate
        processes sharing the batched engine's streams. Observers are not
        supported on this path — per-replicate fault injection has no
        meaning inside a fused replicate block.
        """
        if self.observers:
            raise ConfigurationError(
                "observers are not supported on the batched path; "
                "run replicates individually for fault/observer studies"
            )
        with _span("burn_in", component="driver"):
            for _ in range(self.burn_in):
                process.step()

        tel = _telemetry_current()
        theory_pool = self._theory_normalized_pool(process) if tel is not None else None
        collectors: list[MetricsCollector] | None = None
        with _span("measure", component="driver"):
            for _ in range(self.measure):
                records = process.step()
                if collectors is None:
                    collectors = [MetricsCollector(n=process.n) for _ in records]
                for collector, record in zip(collectors, records):
                    collector.observe(record)
                if tel is not None and theory_pool:
                    for r, record in enumerate(records):
                        tel.set_gauge(
                            "pool_size_over_theory",
                            record.pool_size / process.n / theory_pool,
                            replicate=r,
                        )

        results = []
        for collector in collectors or []:
            series = collector.pool_series
            stationary = is_stationary(series) if self._diagnose_stationarity else None
            results.append(
                SimulationResult(
                    summary=collector.summary(),
                    pool_series=series,
                    burn_in=self.burn_in,
                    measured=self.measure,
                    stationary=stationary,
                )
            )
        return results
