"""Burn-in/measurement execution of round-based processes.

:class:`SimulationDriver` is the single entry point used by examples,
benchmarks, and the experiment harness: it advances a process through a
burn-in phase (statistics discarded, observers still notified), then through
a measurement window feeding a :class:`~repro.engine.metrics.MetricsCollector`,
and returns a :class:`SimulationResult`.

Checkpointing
-------------
With ``checkpoint_dir`` set the driver durably snapshots the complete
resumable state every ``checkpoint_every`` rounds (process state including
its RNG, the streaming collector accumulators, every stateful observer, and
the phase position) through a :class:`~repro.checkpoint.CheckpointStore`.
A later ``run`` against the same directory restores from the newest valid
snapshot and produces a :class:`SimulationResult` and RoundRecord stream
bit-identical to an uninterrupted run — the contract enforced by
``tests/engine/test_driver_checkpoint.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.engine.metrics import MetricsCollector, MetricsSummary, RoundRecord
from repro.engine.observers import Observer
from repro.engine.stability import is_stationary
from repro.errors import CheckpointIncompatible, ConfigurationError, GracefulShutdown
from repro.faults.chaos import chaos_from_env, maybe_chaos_round
from repro.telemetry.runtime import current as _telemetry_current, span as _span

__all__ = ["RoundProcess", "SimulationDriver", "SimulationResult"]


@runtime_checkable
class RoundProcess(Protocol):
    """Minimal interface every simulated process implements."""

    n: int

    def step(self) -> RoundRecord:
        """Advance one round and report what happened."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a driver run.

    Attributes
    ----------
    summary:
        Aggregate statistics over the measurement window.
    pool_series:
        Per-round pool sizes over the measurement window.
    burn_in / measured:
        The phase lengths actually executed.
    stationary:
        Result of the drift diagnostic on the measured pool series.
        **None contract:** ``None`` means the diagnostic was *not run* —
        the driver was configured with ``measure < 4`` (the two-half drift
        test needs at least 2 points per half), so no stationarity claim
        is made either way. Consumers must treat ``None`` as "unknown",
        never as "not stationary"; aggregations (e.g.
        ``PointResult.stationary_fraction``) skip such replicates.
    """

    summary: MetricsSummary
    pool_series: np.ndarray
    burn_in: int
    measured: int
    stationary: bool | None

    @property
    def normalized_pool(self) -> float:
        """Mean pool size divided by n (Figure 4's y-axis)."""
        return self.summary.normalized_pool

    @property
    def avg_wait(self) -> float:
        """Average waiting time (Figure 5, triangles)."""
        return self.summary.avg_wait

    @property
    def max_wait(self) -> int:
        """Maximum waiting time (Figure 5, points)."""
        return self.summary.max_wait


class SimulationDriver:
    """Runs a process through burn-in then measurement.

    Parameters
    ----------
    burn_in:
        Rounds to discard before measuring.
    measure:
        Rounds in the measurement window (the paper averages over 1000).
    observers:
        Optional callbacks notified after *every* round, including burn-in.
    checkpoint_dir:
        Directory of durable snapshots for this run. ``run``/``run_batched``
        restore from the newest valid snapshot found there before stepping.
    checkpoint_every:
        Snapshot cadence in rounds (requires ``checkpoint_dir``); with
        ``checkpoint_dir`` but no cadence the driver only restores (and
        writes a final snapshot if interrupted).
    checkpoint_keep:
        Snapshots retained (rolling); at least 2 so a torn newest file can
        fall back to the previous one.
    """

    def __init__(
        self,
        burn_in: int,
        measure: int,
        observers: Sequence[Observer] = (),
        checkpoint_dir: Path | str | None = None,
        checkpoint_every: int | None = None,
        checkpoint_keep: int = 3,
    ) -> None:
        if burn_in < 0:
            raise ConfigurationError(f"burn_in must be non-negative, got {burn_in}")
        if measure < 1:
            raise ConfigurationError(f"measure must be positive, got {measure}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
            if checkpoint_dir is None:
                raise ConfigurationError("checkpoint_every needs a checkpoint_dir")
        self.burn_in = burn_in
        self.measure = measure
        self.observers = list(observers)
        self.checkpoint_every = checkpoint_every
        if checkpoint_dir is not None:
            from repro.checkpoint import CheckpointStore

            self._store = CheckpointStore(checkpoint_dir, keep=checkpoint_keep)
        else:
            self._store = None
        #: Provenance of the last ``run``/``run_batched``: the
        #: :class:`~repro.checkpoint.RestoredCheckpoint` it resumed from,
        #: or None for a from-scratch run.
        self.last_restore = None
        # The drift diagnostic splits the measured series into two halves
        # and needs at least 2 points in each; decide once at configuration
        # time instead of re-checking the series length on every run.
        self._diagnose_stationarity = measure >= 4

    def _notify(self, record: RoundRecord, process: Any) -> None:
        for observer in self.observers:
            observer.on_round(record, process)

    @staticmethod
    def _theory_normalized_pool(process: Any) -> float | None:
        """Section V reference pool curve for ``process``, when defined.

        Only capped processes with an integer capacity and λ < 1 have the
        ``1/c·ln(1/(1−λ)) + 1`` reference; anything else returns None and
        the deviation gauge is simply not emitted.
        """
        capacity = getattr(process, "capacity", None)
        lam = getattr(process, "lam", None)
        if capacity is None or lam is None or np.ndim(capacity) != 0:
            return None
        if not (0 <= lam < 1) or int(capacity) < 1:
            return None
        from repro.core.theory import empirical_pool_curve

        return empirical_pool_curve(int(capacity), float(lam))

    # -- checkpoint plumbing ------------------------------------------------

    def _observer_states(self) -> list:
        """Snapshot every observer that is stateful; None for the rest."""
        states = []
        for observer in self.observers:
            get_state = getattr(observer, "get_state", None)
            states.append(get_state() if callable(get_state) else None)
        return states

    def _snapshot_payload(
        self,
        process: Any,
        done_burn: int,
        done_measure: int,
        *,
        batched: bool,
        collector: MetricsCollector | None = None,
        collectors: list[MetricsCollector] | None = None,
    ) -> dict:
        payload: dict = {
            "driver": {
                "burn_in": self.burn_in,
                "measure": self.measure,
                "done_burn": done_burn,
                "done_measure": done_measure,
                "batched": batched,
            },
            "process": {
                "class": process.__class__.__name__,
                "n": process.n,
                # Churn changes the live n mid-run; compatibility is judged
                # against the bin count the process was *configured* with.
                "initial_n": getattr(process, "initial_n", process.n),
                "state": process.get_state(),
            },
            "observers": self._observer_states(),
        }
        if batched:
            payload["collectors"] = (
                None if collectors is None else [c.get_state() for c in collectors]
            )
        else:
            payload["collector"] = None if collector is None else collector.get_state()
        return payload

    def _check_restorable(self, payload: dict, process: Any, *, batched: bool) -> None:
        """Reject snapshots that do not describe *this* driver+process."""
        driver = payload.get("driver", {})
        proc = payload.get("process", {})
        problems = []
        if driver.get("burn_in") != self.burn_in:
            problems.append(f"burn_in {driver.get('burn_in')} != {self.burn_in}")
        if driver.get("measure") != self.measure:
            problems.append(f"measure {driver.get('measure')} != {self.measure}")
        if bool(driver.get("batched")) != batched:
            problems.append(f"batched {driver.get('batched')} != {batched}")
        if proc.get("class") != process.__class__.__name__:
            problems.append(
                f"process class {proc.get('class')!r} != " f"{process.__class__.__name__!r}"
            )
        # Compare configured bin counts, not live ones: a snapshot taken
        # after churn resized the pool legitimately differs from the fresh
        # process's n (``process.set_state`` adopts the snapshot's
        # membership). Older snapshots without ``initial_n`` fall back to
        # their recorded live n — correct for every churn-free run.
        snapshot_n = proc.get("initial_n", proc.get("n"))
        process_n = getattr(process, "initial_n", process.n)
        if snapshot_n != process_n:
            problems.append(f"n {snapshot_n} != {process_n}")
        if len(payload.get("observers", ())) != len(self.observers):
            problems.append(
                f"{len(payload.get('observers', ()))} observer states for "
                f"{len(self.observers)} observers"
            )
        if problems:
            raise CheckpointIncompatible(
                "checkpoint does not match this run: " + "; ".join(problems)
            )

    def _restore(self, process: Any, *, batched: bool):
        """Load the newest valid snapshot, apply it, return its payload."""
        restored = self._store.load_latest()
        if restored is None:
            self.last_restore = None
            return None
        payload = restored.payload
        self._check_restorable(payload, process, batched=batched)
        process.set_state(payload["process"]["state"])
        for observer, saved in zip(self.observers, payload["observers"]):
            if saved is not None:
                observer.set_state(saved)
        self.last_restore = restored
        return payload

    def _save(self, round_index: int, payload: dict, phase: str) -> None:
        self._store.save(round_index, payload, meta={"round": round_index, "phase": phase})

    def _after_round(self, record, chaos, label: str, phase: str, payload_fn) -> None:
        """Periodic snapshot, then the round-scoped chaos hook.

        The snapshot is written *before* chaos fires so a kill-at-round run
        always leaves a resumable snapshot at the kill point. The cadence
        keys on the process's own round counter (restored on resume), so a
        resumed run checkpoints at exactly the rounds the original would.
        """
        if (
            self._store is not None
            and self.checkpoint_every is not None
            and record.round % self.checkpoint_every == 0
        ):
            self._save(record.round, payload_fn(), phase)
        if chaos is not None:
            maybe_chaos_round(label, record.round, spec=chaos)

    def run(self, process: RoundProcess) -> SimulationResult:
        """Execute the configured phases on ``process`` and summarise.

        With a checkpoint store configured the run first restores from the
        newest valid snapshot (skipping the burn-in/measure rounds it
        already covers), snapshots every ``checkpoint_every`` rounds, and
        writes a final snapshot if interrupted — the resumed result is
        bit-identical to an uninterrupted run.
        """
        collector = MetricsCollector(n=process.n)
        done_burn = 0
        done_measure = 0
        last_round = 0
        self.last_restore = None
        if self._store is not None:
            payload = self._restore(process, batched=False)
            if payload is not None:
                if payload["collector"] is not None:
                    collector.set_state(payload["collector"])
                done_burn = int(payload["driver"]["done_burn"])
                done_measure = int(payload["driver"]["done_measure"])
                last_round = self.last_restore.round
            else:
                # Fresh start: seed the store with a round-0 snapshot so a
                # kill before the first cadence point is still resumable.
                self._save(
                    0,
                    self._snapshot_payload(process, 0, 0, batched=False),
                    "burn_in",
                )

        chaos = chaos_from_env()
        label = type(process).__name__
        tel = _telemetry_current()
        theory_pool = self._theory_normalized_pool(process) if tel is not None else None
        phase = "burn_in"
        # An interrupt can land mid-step, leaving the process advanced past
        # the bookkeeping counters; a snapshot taken there would not resume
        # bit-identically. Only the round boundary is a consistent cut.
        at_boundary = True
        try:
            with _span("burn_in", component="driver"):
                while done_burn < self.burn_in:
                    at_boundary = False
                    record = process.step()
                    self._notify(record, process)
                    done_burn += 1
                    last_round = record.round
                    at_boundary = True
                    self._after_round(
                        record,
                        chaos,
                        label,
                        phase,
                        lambda: self._snapshot_payload(
                            process, done_burn, done_measure, batched=False
                        ),
                    )
            phase = "measure"
            with _span("measure", component="driver"):
                while done_measure < self.measure:
                    at_boundary = False
                    record = process.step()
                    self._notify(record, process)
                    collector.observe(record)
                    done_measure += 1
                    last_round = record.round
                    at_boundary = True
                    if tel is not None:
                        normalized = record.pool_size / process.n
                        tel.set_gauge("pool_size_normalized", normalized)
                        if theory_pool:
                            tel.set_gauge("pool_size_over_theory", normalized / theory_pool)
                    self._after_round(
                        record,
                        chaos,
                        label,
                        phase,
                        lambda: self._snapshot_payload(
                            process,
                            done_burn,
                            done_measure,
                            batched=False,
                            collector=collector,
                        ),
                    )
        except (KeyboardInterrupt, GracefulShutdown):
            if self._store is not None and at_boundary:
                self._save(
                    last_round,
                    self._snapshot_payload(
                        process,
                        done_burn,
                        done_measure,
                        batched=False,
                        collector=collector if done_measure else None,
                    ),
                    phase,
                )
            raise

        series = collector.pool_series
        stationary = is_stationary(series) if self._diagnose_stationarity else None
        return SimulationResult(
            summary=collector.summary(),
            pool_series=series,
            burn_in=self.burn_in,
            measured=self.measure,
            stationary=stationary,
        )

    def run_batched(self, process: Any) -> list[SimulationResult]:
        """Execute the phases on a batched process; one result per replicate.

        ``process.step()`` must return a *list* of per-replicate
        :class:`RoundRecord` objects (see
        :class:`~repro.kernels.batched.BatchedCappedProcess`). Each
        replicate gets its own :class:`MetricsCollector`, so the returned
        results are exactly what ``run`` would have produced on R separate
        processes sharing the batched engine's streams. Observers are not
        supported on this path — per-replicate fault injection has no
        meaning inside a fused replicate block.
        """
        if self.observers:
            raise ConfigurationError(
                "observers are not supported on the batched path; "
                "run replicates individually for fault/observer studies"
            )
        collectors: list[MetricsCollector] | None = None
        done_burn = 0
        done_measure = 0
        last_round = 0
        self.last_restore = None
        if self._store is not None:
            payload = self._restore(process, batched=True)
            if payload is not None:
                if payload["collectors"] is not None:
                    collectors = []
                    for saved in payload["collectors"]:
                        collector = MetricsCollector(n=process.n)
                        collector.set_state(saved)
                        collectors.append(collector)
                done_burn = int(payload["driver"]["done_burn"])
                done_measure = int(payload["driver"]["done_measure"])
                last_round = self.last_restore.round
            else:
                self._save(
                    0,
                    self._snapshot_payload(process, 0, 0, batched=True),
                    "burn_in",
                )

        chaos = chaos_from_env()
        label = type(process).__name__
        tel = _telemetry_current()
        theory_pool = self._theory_normalized_pool(process) if tel is not None else None
        phase = "burn_in"
        at_boundary = True
        try:
            with _span("burn_in", component="driver"):
                while done_burn < self.burn_in:
                    at_boundary = False
                    records = process.step()
                    done_burn += 1
                    last_round = records[0].round
                    at_boundary = True
                    self._after_round(
                        records[0],
                        chaos,
                        label,
                        phase,
                        lambda: self._snapshot_payload(
                            process, done_burn, done_measure, batched=True
                        ),
                    )
            phase = "measure"
            with _span("measure", component="driver"):
                while done_measure < self.measure:
                    at_boundary = False
                    records = process.step()
                    if collectors is None:
                        collectors = [MetricsCollector(n=process.n) for _ in records]
                    for collector, record in zip(collectors, records):
                        collector.observe(record)
                    done_measure += 1
                    last_round = records[0].round
                    at_boundary = True
                    if tel is not None and theory_pool:
                        for r, record in enumerate(records):
                            tel.set_gauge(
                                "pool_size_over_theory",
                                record.pool_size / process.n / theory_pool,
                                replicate=r,
                            )
                    self._after_round(
                        records[0],
                        chaos,
                        label,
                        phase,
                        lambda: self._snapshot_payload(
                            process,
                            done_burn,
                            done_measure,
                            batched=True,
                            collectors=collectors,
                        ),
                    )
        except (KeyboardInterrupt, GracefulShutdown):
            if self._store is not None and at_boundary:
                self._save(
                    last_round,
                    self._snapshot_payload(
                        process,
                        done_burn,
                        done_measure,
                        batched=True,
                        collectors=collectors,
                    ),
                    phase,
                )
            raise

        results = []
        for collector in collectors or []:
            series = collector.pool_series
            stationary = is_stationary(series) if self._diagnose_stationarity else None
            results.append(
                SimulationResult(
                    summary=collector.summary(),
                    pool_series=series,
                    burn_in=self.burn_in,
                    measured=self.measure,
                    stationary=stationary,
                )
            )
        return results
