"""Per-round records and streaming measurement collectors.

Every process's ``step()`` emits one :class:`RoundRecord`. The
:class:`MetricsCollector` folds records from the measurement window into
constant-size summaries matching the quantities reported in the paper's
Section V: normalized pool size (pool divided by n, averaged over rounds),
average waiting time, and maximum waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.streaming import Histogram, RunningStats

__all__ = ["RoundRecord", "MetricsCollector", "MetricsSummary"]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(slots=True)
class RoundRecord:
    """What happened in one simulated round.

    Attributes
    ----------
    round:
        The round index ``t`` (1-based, matching the paper).
    arrivals:
        Newly generated balls this round.
    thrown:
        Balls that chose a bin this round (pool leftovers + arrivals for
        CAPPED; whatever the process defines for baselines).
    accepted:
        Balls accepted into bin buffers this round.
    deleted:
        Balls deleted (served) at the end of the round.
    pool_size:
        Pool size ``m(t)`` at the end of the round (0 for processes
        without a pool).
    total_load:
        Sum of bin loads at the end of the round.
    max_load:
        Maximum bin load at the end of the round.
    wait_values / wait_counts:
        Waiting-time observations finalised this round, as a sparse
        (value, multiplicity) pair of arrays. Fast simulators record a
        ball's waiting time at *acceptance* (when it becomes determined);
        exact simulators record it at deletion. In steady state the two
        attributions have identical distributions.
    """

    round: int
    arrivals: int = 0
    thrown: int = 0
    accepted: int = 0
    deleted: int = 0
    pool_size: int = 0
    total_load: int = 0
    max_load: int = 0
    wait_values: np.ndarray = field(default_factory=lambda: _EMPTY)
    wait_counts: np.ndarray = field(default_factory=lambda: _EMPTY)

    @property
    def wait_total(self) -> int:
        """Number of waiting-time observations in this record."""
        return int(self.wait_counts.sum()) if len(self.wait_counts) else 0


@dataclass(frozen=True, slots=True)
class MetricsSummary:
    """Aggregated measurement-window statistics.

    ``normalized_pool`` is ``mean(pool_size) / n`` — the y-axis of the
    paper's Figure 4. ``avg_wait`` / ``max_wait`` are the y-axes of
    Figure 5.
    """

    rounds: int
    n: int
    mean_pool: float
    normalized_pool: float
    peak_pool: int
    avg_wait: float
    max_wait: int
    wait_p99: int
    mean_load: float
    peak_max_load: int
    throughput: float
    balls_observed: int

    def __str__(self) -> str:
        return (
            f"rounds={self.rounds} pool/n={self.normalized_pool:.3f} "
            f"avg_wait={self.avg_wait:.3f} max_wait={self.max_wait} "
            f"p99_wait={self.wait_p99} peak_load={self.peak_max_load}"
        )


class MetricsCollector:
    """Streams :class:`RoundRecord` objects into a :class:`MetricsSummary`.

    Parameters
    ----------
    n:
        Number of bins (used for normalisation).
    keep_pool_series:
        If True (default) the full per-round pool-size series is kept —
        rounds number in the thousands, so this is cheap and enables
        stationarity diagnostics and dominance checks.
    """

    def __init__(self, n: int, keep_pool_series: bool = True) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        self.n = n
        self.keep_pool_series = keep_pool_series
        self.rounds = 0
        self.pool_stats = RunningStats()
        self.load_stats = RunningStats()
        self.wait_stats = RunningStats()
        self.wait_histogram = Histogram()
        self.peak_pool = 0
        self.peak_max_load = 0
        self.total_deleted = 0
        self._pool_series: list[int] = []

    def observe(self, record: RoundRecord) -> None:
        """Fold one round into the summary."""
        self.rounds += 1
        self.pool_stats.add(record.pool_size)
        self.load_stats.add(record.total_load)
        if record.pool_size > self.peak_pool:
            self.peak_pool = record.pool_size
        if record.max_load > self.peak_max_load:
            self.peak_max_load = record.max_load
        self.total_deleted += record.deleted
        if len(record.wait_values):
            self.wait_histogram.add_array(record.wait_values, record.wait_counts)
            for value, count in zip(record.wait_values, record.wait_counts):
                self.wait_stats.add(float(value), float(count))
        if self.keep_pool_series:
            self._pool_series.append(record.pool_size)

    @property
    def pool_series(self) -> np.ndarray:
        """Per-round pool sizes over the observed window."""
        return np.asarray(self._pool_series, dtype=np.int64)

    def get_state(self) -> dict:
        """Snapshot every streaming accumulator for checkpoint/restore."""
        return {
            "n": self.n,
            "keep_pool_series": self.keep_pool_series,
            "rounds": self.rounds,
            "pool_stats": self.pool_stats.get_state(),
            "load_stats": self.load_stats.get_state(),
            "wait_stats": self.wait_stats.get_state(),
            "wait_histogram": self.wait_histogram.get_state(),
            "peak_pool": self.peak_pool,
            "peak_max_load": self.peak_max_load,
            "total_deleted": self.total_deleted,
            "pool_series": list(self._pool_series),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (same ``n``).

        A restored collector folds subsequent records into the identical
        accumulator trajectory, so a summary over (restored prefix + live
        suffix) equals the uninterrupted run's bit for bit.
        """
        if int(state["n"]) != self.n:
            raise ValueError(f"collector state has n={state['n']}, expected n={self.n}")
        self.keep_pool_series = bool(state["keep_pool_series"])
        self.rounds = int(state["rounds"])
        self.pool_stats.set_state(state["pool_stats"])
        self.load_stats.set_state(state["load_stats"])
        self.wait_stats.set_state(state["wait_stats"])
        self.wait_histogram.set_state(state["wait_histogram"])
        self.peak_pool = int(state["peak_pool"])
        self.peak_max_load = int(state["peak_max_load"])
        self.total_deleted = int(state["total_deleted"])
        self._pool_series = [int(v) for v in state["pool_series"]]

    def summary(self) -> MetricsSummary:
        """Produce the aggregate summary for everything observed so far."""
        if self.rounds == 0:
            raise ValueError("no rounds observed; cannot summarise")
        has_waits = self.wait_histogram.total > 0
        return MetricsSummary(
            rounds=self.rounds,
            n=self.n,
            mean_pool=self.pool_stats.mean,
            normalized_pool=self.pool_stats.mean / self.n,
            peak_pool=self.peak_pool,
            avg_wait=self.wait_stats.mean,
            max_wait=self.wait_histogram.max if has_waits else 0,
            wait_p99=self.wait_histogram.quantile(0.99) if has_waits else 0,
            mean_load=self.load_stats.mean,
            peak_max_load=self.peak_max_load,
            throughput=self.total_deleted / self.rounds,
            balls_observed=self.wait_histogram.total,
        )
