"""Round-based simulation engine.

All processes in this library (the paper's CAPPED/MODCAPPED and every
baseline) advance in synchronous rounds and expose the same minimal
interface: a ``step()`` method returning a :class:`~repro.engine.metrics.RoundRecord`.
The engine layers generic machinery on top:

* :mod:`repro.engine.metrics` — the per-round record and streaming
  measurement collectors.
* :mod:`repro.engine.driver` — burn-in + measurement-window execution.
* :mod:`repro.engine.observers` — pluggable per-round callbacks (tracing,
  invariant checking, progress logging).
* :mod:`repro.engine.stability` — burn-in heuristics and stationarity
  diagnostics.
"""

from repro.engine.driver import SimulationDriver, SimulationResult
from repro.engine.metrics import MetricsCollector, RoundRecord
from repro.engine.observers import (
    AgeProfiler,
    InvariantChecker,
    Observer,
    ProgressLogger,
    TraceRecorder,
)
from repro.engine.stability import default_burn_in, is_stationary
from repro.engine.trace import TraceWriter, read_trace, write_trace

__all__ = [
    "RoundRecord",
    "MetricsCollector",
    "SimulationDriver",
    "SimulationResult",
    "Observer",
    "TraceRecorder",
    "InvariantChecker",
    "AgeProfiler",
    "ProgressLogger",
    "default_burn_in",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "is_stationary",
]
