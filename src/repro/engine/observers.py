"""Pluggable per-round observers.

Observers receive every :class:`~repro.engine.metrics.RoundRecord` produced
by the driver — including burn-in rounds — and may inspect the process
itself. They are the extension point for tracing, invariant auditing, and
progress reporting without touching simulator inner loops.

Ordering and error semantics (see ``docs/observability.md``):

* observers are notified in list order, after the round's record exists
  and after the process state for that round is final;
* an observer exception propagates immediately — the driver does not
  swallow it, later observers in the list are not called for that round,
  and the run aborts. Because simulator state mutates *before*
  notification, and the parallel runner journals a task's outcome only
  after the whole measurement returns, an observer raising mid-run can
  never corrupt the journal or the result cache — the task simply fails
  (and is retried/quarantined by the runner's fault-tolerance machinery).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.engine.metrics import RoundRecord
from repro.errors import InvariantViolation

__all__ = [
    "Observer",
    "TraceRecorder",
    "InvariantChecker",
    "AgeProfiler",
    "LoadDistributionObserver",
    "ProgressLogger",
]


@runtime_checkable
class Observer(Protocol):
    """Callback protocol invoked after every simulated round."""

    def on_round(self, record: RoundRecord, process: Any) -> None:
        """Called once per round with the record and the live process."""
        ...  # pragma: no cover - protocol


class TraceRecorder:
    """Keeps every :class:`RoundRecord` for post-hoc inspection.

    Intended for tests and debugging; memory grows linearly with rounds.
    """

    def __init__(self) -> None:
        self.records: list[RoundRecord] = []

    def on_round(self, record: RoundRecord, process: Any) -> None:
        self.records.append(record)

    def pool_sizes(self) -> list[int]:
        """Pool size per recorded round."""
        return [r.pool_size for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


class InvariantChecker:
    """Calls ``process.check_invariants()`` every ``every`` rounds.

    Processes in this library expose ``check_invariants`` raising
    :class:`~repro.errors.InvariantViolation` on inconsistent state; running
    the check periodically during long simulations catches state corruption
    close to where it happens instead of in the final statistics.

    A failing check is re-raised as an :class:`InvariantViolation` whose
    message localizes the failure: the round number, the process class, the
    underlying error, and a snapshot of the round's headline state.
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"'every' must be positive, got {every}")
        self.every = every
        self.checks_run = 0

    def on_round(self, record: RoundRecord, process: Any) -> None:
        if record.round % self.every == 0:
            check = getattr(process, "check_invariants", None)
            if check is not None:
                try:
                    check()
                except Exception as err:
                    snapshot = (
                        f"pool={record.pool_size} total_load={record.total_load} "
                        f"max_load={record.max_load} accepted={record.accepted} "
                        f"deleted={record.deleted}"
                    )
                    raise InvariantViolation(
                        f"invariant violated at round {record.round} in "
                        f"{type(process).__name__}: {err} [{snapshot}]"
                    ) from err
                self.checks_run += 1


class AgeProfiler:
    """Tracks the age profile of the pool over time.

    Records, per observed round, the age of the oldest pool ball and the
    number of distinct age classes. The oldest pool age upper-bounds the
    pool-delay component of every future waiting time, so its trajectory
    visualises the Lemma 3–5 drain stages directly. Only meaningful for
    processes exposing an ``pool`` attribute (CAPPED variants).
    """

    def __init__(self) -> None:
        self.max_ages: list[int] = []
        self.age_class_counts: list[int] = []

    def on_round(self, record: RoundRecord, process: Any) -> None:
        pool = getattr(process, "pool", None)
        if pool is None or not hasattr(pool, "max_age"):
            return
        self.max_ages.append(pool.max_age(record.round))
        self.age_class_counts.append(pool.num_buckets)

    @property
    def peak_age(self) -> int:
        """Largest pool age ever observed (0 when nothing recorded)."""
        return max(self.max_ages, default=0)


class LoadDistributionObserver:
    """Accumulates the end-of-round bin-load distribution.

    Records how often each load value 0..max occurs across bins and
    rounds. In steady state this converges to the stationary single-bin
    load distribution, which the mean-field solver
    (:func:`repro.core.meanfield.stationary_loads`) predicts — the test
    suite cross-validates the two. Works with any process exposing a
    ``bins`` attribute with a ``loads`` array.
    """

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self.rounds_observed = 0

    def on_round(self, record: RoundRecord, process: Any) -> None:
        bins = getattr(process, "bins", None)
        loads = getattr(bins, "loads", None)
        if loads is None:
            return
        self.rounds_observed += 1
        values, counts = np.unique(loads, return_counts=True)
        for value, count in zip(values, counts):
            self._counts[int(value)] = self._counts.get(int(value), 0) + int(count)

    def distribution(self) -> np.ndarray:
        """Empirical load distribution as a probability vector 0..max."""
        if not self._counts:
            return np.zeros(0)
        size = max(self._counts) + 1
        out = np.zeros(size)
        for value, count in self._counts.items():
            out[value] = count
        return out / out.sum()


def _stream_is_tty(stream: Any) -> bool:
    """True when ``stream`` is an interactive terminal (safe on pseudo-files)."""
    isatty = getattr(stream, "isatty", None)
    if isatty is None:
        return False
    try:
        return bool(isatty())
    except (ValueError, OSError):
        return False


class ProgressLogger:
    """Writes a one-line progress report every ``every`` rounds.

    On a TTY the line updates in place (carriage return); on non-TTY
    streams (CI logs, redirected files) each report is a plain
    newline-terminated line, so logs stay readable.
    """

    def __init__(self, every: int = 1000, stream=None) -> None:
        if every < 1:
            raise ValueError(f"'every' must be positive, got {every}")
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self.use_tty = _stream_is_tty(self.stream)
        self._start = time.perf_counter()
        self._line_width = 0

    def on_round(self, record: RoundRecord, process: Any) -> None:
        if record.round % self.every == 0:
            elapsed = time.perf_counter() - self._start
            text = (
                f"[round {record.round}] pool={record.pool_size} "
                f"max_load={record.max_load} elapsed={elapsed:.1f}s"
            )
            if self.use_tty:
                padding = " " * max(0, self._line_width - len(text))
                self._line_width = len(text)
                self.stream.write("\r" + text + padding)
            else:
                self.stream.write(text + "\n")
