"""Round-trace serialisation (JSONL record / replay).

Long reproduction runs are expensive; persisting their round-by-round
records lets later analysis (stationarity diagnostics, dominance checks,
plotting) run without re-simulating, and regression tests can replay a
stored trace against freshly computed statistics.

One :class:`~repro.engine.metrics.RoundRecord` maps to one JSON line with
the waiting-time sparse pairs inlined; :func:`read_trace` restores the
records exactly (numpy arrays included). Paths ending in ``.gz`` (the
conventional spelling is ``.jsonl.gz``) are gzip-compressed and
decompressed transparently by every entry point — long paper-profile
traces shrink by an order of magnitude.
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import IO

import numpy as np

from repro.engine.metrics import RoundRecord

__all__ = ["record_to_json", "record_from_json", "write_trace", "read_trace", "TraceWriter"]


def _open_trace(path: Path, mode: str) -> IO[str]:
    """Open a trace file in text mode, transparently gzipped for ``*.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def record_to_json(record: RoundRecord) -> str:
    """Serialise one round record to a single JSON line."""
    payload = {
        "round": record.round,
        "arrivals": record.arrivals,
        "thrown": record.thrown,
        "accepted": record.accepted,
        "deleted": record.deleted,
        "pool_size": record.pool_size,
        "total_load": record.total_load,
        "max_load": record.max_load,
        "wait_values": record.wait_values.tolist(),
        "wait_counts": record.wait_counts.tolist(),
    }
    return json.dumps(payload, separators=(",", ":"))


def record_from_json(line: str) -> RoundRecord:
    """Parse one JSON line back into a :class:`RoundRecord`."""
    payload = json.loads(line)
    return RoundRecord(
        round=int(payload["round"]),
        arrivals=int(payload["arrivals"]),
        thrown=int(payload["thrown"]),
        accepted=int(payload["accepted"]),
        deleted=int(payload["deleted"]),
        pool_size=int(payload["pool_size"]),
        total_load=int(payload["total_load"]),
        max_load=int(payload["max_load"]),
        wait_values=np.asarray(payload["wait_values"], dtype=np.int64),
        wait_counts=np.asarray(payload["wait_counts"], dtype=np.int64),
    )


def write_trace(records: Iterable[RoundRecord], path: Path | str) -> Path:
    """Write records as JSONL (one line per round); parents created.

    A ``.jsonl.gz`` path produces a gzip-compressed trace.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_trace(path, "w") as handle:
        for record in records:
            handle.write(record_to_json(record) + "\n")
    return path


def read_trace(path: Path | str) -> Iterator[RoundRecord]:
    """Lazily read a JSONL trace written by :func:`write_trace` (plain or gzip)."""
    with _open_trace(Path(path), "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield record_from_json(line)


class TraceWriter:
    """Observer streaming every round record straight to a JSONL file.

    Unlike :class:`~repro.engine.observers.TraceRecorder` it holds no
    records in memory, so it suits arbitrarily long runs. A ``.jsonl.gz``
    path streams through gzip. Use as a context manager or call
    :meth:`close` explicitly.
    """

    def __init__(self, path: Path | str) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._handle = _open_trace(path, "w")
        self.records_written = 0

    def on_round(self, record: RoundRecord, process) -> None:
        self._handle.write(record_to_json(record) + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
