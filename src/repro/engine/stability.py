"""Burn-in heuristics and stationarity diagnostics.

The paper measures a "stabilized system after a burn-in phase of suitable
length". Two questions must be answered in a reproduction: *how long* to
burn in, and *how to verify* the burned-in system is actually stationary.

* :func:`default_burn_in` derives a burn-in length from the theory: the
  system approaches its stationary pool size within a small multiple of the
  waiting-time bound, so we use a comfortable multiple of the Theorem 2
  waiting-time bound (and never less than a floor).
* :func:`is_stationary` is a simple drift test over a recorded series —
  compare the means of the first and second half of the tail window against
  the pooled standard deviation (a Geweke-style diagnostic without the
  spectral machinery, adequate for these short-memory processes).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["default_burn_in", "is_stationary", "split_drift"]


def default_burn_in(
    n: int,
    c: int,
    lam: float,
    multiplier: float = 10.0,
    floor: int = 100,
    warm_start: bool = False,
) -> int:
    """Heuristic burn-in length for CAPPED(c, λ)-like processes.

    Two time scales matter:

    * the waiting-time scale of Theorem 2,
      ``4·ln(1/(1−λ))/(c·(1−1/e)) + log2 log2 n + c`` — how long individual
      balls persist — multiplied by a safety factor; and
    * the *relaxation* scale ``Θ(1/(1−λ))``: near equilibrium, the pool
      drains its excess at rate ``≈ (1−λ)`` per round (the mean-field
      linearisation), so a cold start needs several multiples of
      ``1/(1−λ)`` rounds to fill up.

    With ``warm_start=True`` — the simulation begins at the mean-field
    equilibrium pool (see :mod:`repro.core.meanfield`) — the relaxation
    term is dropped and only a short settling window is kept.
    """
    if not 0.0 <= lam < 1.0:
        raise ValueError(f"lambda must lie in [0, 1), got {lam}")
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if c < 1:
        raise ValueError(f"capacity must be >= 1, got {c}")
    wait_scale = (
        4.0 * math.log(1.0 / (1.0 - lam)) / (c * (1.0 - 1.0 / math.e))
        + math.log2(max(2.0, math.log2(n)))
        + c
    )
    burn = multiplier * wait_scale
    if not warm_start:
        burn = max(burn, 5.0 / (1.0 - lam))
    return max(floor, int(math.ceil(burn)))


def split_drift(series: np.ndarray | list[float]) -> float:
    """Normalised drift between the two halves of ``series``.

    Returns ``|mean(first half) − mean(second half)| / pooled std``; values
    near 0 indicate no drift. Returns 0.0 for constant series.
    """
    data = np.asarray(series, dtype=float)
    if data.size < 4:
        raise ValueError(f"need at least 4 observations, got {data.size}")
    half = data.size // 2
    first, second = data[:half], data[half:]
    pooled_std = float(np.std(data, ddof=1))
    if pooled_std == 0.0:
        return 0.0
    return abs(float(first.mean()) - float(second.mean())) / pooled_std


def is_stationary(series: np.ndarray | list[float], threshold: float = 0.5) -> bool:
    """Whether ``series`` shows no material drift between its halves.

    The threshold is in units of the series' own standard deviation; 0.5
    flags a drift of half a standard deviation, which comfortably catches a
    still-filling pool while tolerating stationary fluctuation.
    """
    return split_drift(series) <= threshold
