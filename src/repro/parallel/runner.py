"""Process-pool experiment runner: plan → measure → replay.

:class:`ExperimentRunner` executes a set of experiments in three phases:

1. **Discover** — each experiment generator runs under a
   :class:`~repro.parallel.context.RecordingContext` (on a worker, so pure
   driver experiments parallelise across each other) to extract its grid of
   measurement cells.
2. **Measure** — every (cell, replicate) becomes an independent task. Tasks
   already present in the resume journal or the content-addressed cache are
   served from disk; the rest fan out over a process pool. Each completed
   task is journaled (fsync'd) before the runner proceeds, so a crash loses
   at most the in-flight tasks.
3. **Replay** — each generator re-runs with a
   :class:`~repro.parallel.context.ReplayContext` serving the precomputed
   outcomes through the same aggregation as the serial path, yielding
   results bit-identical to ``--jobs 1``.

Determinism: replicate streams depend only on ``(seed, replicate)`` and
cell seeds only on the experiment's loop indices, so worker scheduling
cannot influence any number in the output.

Fault tolerance
---------------
A worker that raises is retried with exponential backoff + jitter up to
``max_retries`` times; a task that exhausts its budget is **quarantined**
(journaled, reported in :class:`RunnerReport`, never re-run on ``--resume``)
rather than aborting the sweep. A task that exceeds ``task_timeout`` has its
worker killed and is retried/quarantined like a failure. A broken process
pool (worker SIGKILLed, OOM'd, hung) is rebuilt up to ``max_pool_rebuilds``
times; past that budget the runner degrades gracefully to in-process serial
execution. Experiments whose tasks were quarantined (or whose discovery run
failed) are reported in ``RunnerReport.failures`` while every other
experiment still completes — the accounting invariant is that every task
ends up computed, journaled, cached, or quarantined; nothing is silently
lost.
"""

from __future__ import annotations

import random
import shutil
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence, TextIO

from repro.errors import GracefulShutdown, ParallelExecutionError
from repro.parallel.cache import ResultCache
from repro.parallel.context import ReplayContext, use_context
from repro.parallel.journal import Journal, JournalState
from repro.parallel.keys import experiment_digest
from repro.parallel.progress import LiveStatusReporter, ProgressReporter, TimingStats
from repro.parallel.tasks import (
    TaskSpec,
    discover_experiment,
    execute_task,
    profile_payload,
    result_from_payload,
    result_payload,
)
from repro.telemetry.runtime import current as _telemetry_current, span as _span
from repro.telemetry.tracing import build_span, trace_id_for

__all__ = ["ExperimentRunner", "RunnerReport", "TaskFailure", "run_experiments"]


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task after its retry budget was spent."""

    error: str
    attempts: int
    timed_out: bool = False


@dataclass
class RunnerReport:
    """What a runner invocation did, and what it produced.

    ``results`` preserves the requested experiment order, skipping failed
    experiments (see ``failures``). The counters split every task and
    experiment by where its result came from — computed now, replayed from
    the resume journal, or served by the cache — plus the fault-tolerance
    ledger: retry attempts made, tasks quarantined, pool rebuilds, and
    whether the runner fell back to serial execution.
    """

    results: list[Any] = field(default_factory=list)
    tasks_total: int = 0
    tasks_computed: int = 0
    tasks_from_journal: int = 0
    tasks_from_cache: int = 0
    tasks_from_remote_cache: int = 0
    tasks_remote: int = 0
    tasks_releases: int = 0
    tasks_reattached: int = 0
    broker_reconnects: int = 0
    remote_workers: dict[str, int] = field(default_factory=dict)
    tasks_retried: int = 0
    tasks_quarantined: int = 0
    quarantined: list[dict] = field(default_factory=list)
    tasks_profiled: int = 0
    hotspots: list[dict] = field(default_factory=list)
    experiments_total: int = 0
    experiments_from_journal: int = 0
    experiments_from_cache: int = 0
    experiments_failed: int = 0
    failures: dict[str, str] = field(default_factory=dict)
    journal_corrupt_lines: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    timings: TimingStats = field(default_factory=TimingStats)
    wall_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return self.tasks_from_cache + self.tasks_from_remote_cache + self.experiments_from_cache

    @property
    def cache_misses(self) -> int:
        return self.tasks_computed

    @property
    def tasks_accounted(self) -> int:
        """Every task must end up here: computed, journal, cache, or quarantine."""
        return (
            self.tasks_computed
            + self.tasks_from_journal
            + self.tasks_from_cache
            + self.tasks_from_remote_cache
            + self.tasks_quarantined
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"experiments: {self.experiments_total} "
            f"(journal {self.experiments_from_journal}, cache {self.experiments_from_cache})",
            f"tasks: {self.tasks_total} (computed {self.tasks_computed}, "
            f"journal {self.tasks_from_journal}, cache {self.tasks_from_cache}, "
            f"remote-cache {self.tasks_from_remote_cache})",
            f"wall clock: {self.wall_seconds:.2f}s",
        ]
        if self.tasks_remote or self.remote_workers or self.tasks_releases:
            fleet = "/".join(
                f"{worker}:{count}" for worker, count in sorted(self.remote_workers.items())
            )
            lines.append(
                f"broker: {self.tasks_remote} task(s) on {len(self.remote_workers)} "
                f"worker(s) [{fleet}]  re-leases {self.tasks_releases}"
            )
        if self.broker_reconnects or self.tasks_reattached:
            lines.append(
                f"broker outages: reconnected {self.broker_reconnects} time(s), "
                f"{self.tasks_reattached} in-flight lease(s) re-adopted"
            )
        if self.journal_corrupt_lines:
            lines.append(f"journal: skipped {self.journal_corrupt_lines} torn line(s)")
        if self.tasks_profiled:
            lines.append(f"profiled: {self.tasks_profiled} task(s) under cProfile")
            for entry in self.hotspots[:5]:
                lines.append(
                    f"  hotspot: {entry['function']}  cum {entry['cumtime']:.3f}s "
                    f"({entry['ncalls']} calls)"
                )
        if self.tasks_retried:
            lines.append(f"retries: {self.tasks_retried} task attempt(s) retried")
        if self.pool_rebuilds:
            rebuilt = f"pool: rebuilt {self.pool_rebuilds} time(s)"
            if self.serial_fallback:
                rebuilt += "; fell back to serial execution"
            lines.append(rebuilt)
        for entry in self.quarantined:
            lines.append(
                f"quarantined: {entry['label']} after {entry['attempts']} "
                f"attempt(s): {entry['error']}"
            )
        for experiment_id in sorted(self.failures):
            lines.append(f"failed: {experiment_id}: {self.failures[experiment_id]}")
        return lines


class ExperimentRunner:
    """Parallel, resumable, fault-tolerant executor for the experiment registry.

    Parameters
    ----------
    profile:
        Profile name or :class:`~repro.analysis.experiments.Profile`.
    jobs:
        Worker processes; 1 executes everything in-process (still with
        journal/cache/retry support, but no task timeouts — there is no
        second process to kill).
    cache_dir:
        Directory for the content-addressed result cache. Also the default
        home of the resume journal (``<cache_dir>/journal.jsonl``).
    resume:
        Replay the journal before computing, skipping finished work and
        previously quarantined tasks.
    journal_path:
        Explicit journal location (overrides the cache-dir default).
    progress_stream:
        Where to write progress/ETA lines (None disables progress output).
    live_status:
        Upgrade progress lines to the live dashboard (per-worker
        throughput, retry/quarantine counts, running pool-size-vs-theory
        error). Needs a ``progress_stream``.
    task_timeout:
        Seconds a single task may run before its worker is killed and the
        task is retried (None disables; ignored for in-process execution).
    max_retries:
        Extra executions allowed per task after its first failure; a task
        failing ``max_retries + 1`` times is quarantined.
    retry_backoff:
        Base of the exponential backoff between retries, in seconds
        (attempt ``k`` waits ``retry_backoff · 2^(k-1)`` plus up to 25%
        deterministic jitter). 0 disables the wait (used by tests).
    max_pool_rebuilds:
        Broken-pool rebuilds tolerated before degrading to serial
        execution. The default leaves room for a deterministic
        worker-killer to exhaust its retry budget and be quarantined
        while the pool is still being rebuilt around it.
    checkpoint_every:
        Snapshot cadence (rounds) for the simulation inside each task;
        a task whose worker died resumes from its latest snapshot instead
        of recomputing from round zero. Checkpoint placement never enters
        a task's digest, so journal/cache keys are unchanged.
    checkpoint_dir:
        Home of the per-task snapshot directories (keyed by task digest);
        defaults to ``<cache_dir>/checkpoints``. A task's directory is
        removed once its outcome is journaled.
    broker:
        ``host:port`` of a ``repro broker``. Measurement tasks are then
        submitted to the broker's worker fleet instead of a local process
        pool (``jobs`` only affects the discovery phase). Journal,
        cache-mirroring, quarantine, and replay semantics are unchanged:
        a broker-side terminal failure is quarantined exactly like a
        local retry-budget exhaustion, and the merged output stays
        byte-identical to ``--jobs 1``. Checkpoint placement for
        re-leased tasks is configured on the *broker*, which owns the
        snapshot directories.
    broker_auth_token:
        Shared secret for a broker running with ``--auth-token``; the
        client answers the broker's HMAC challenge with it.
    broker_tls_ca:
        PEM certificate that signed the broker's ``--tls-cert``;
        enables TLS on the broker connection.
    cprofile:
        Run each computed task under cProfile and fold the merged top-N
        hotspots into ``RunnerReport.hotspots`` (the CLI copies them into
        the run manifest). Opt-in only — profiling costs 10-30% wall
        clock — and invisible to task digests and outcomes.

    Graceful shutdown: while :meth:`run` executes on the main thread,
    SIGINT/SIGTERM stop the sweep at the next task boundary — the journal
    (flushed per entry) and any task checkpoints are preserved for
    ``--resume`` — by raising :class:`~repro.errors.GracefulShutdown`.
    """

    def __init__(
        self,
        profile: Any = "default",
        jobs: int = 1,
        cache_dir: Path | str | None = None,
        resume: bool = False,
        journal_path: Path | str | None = None,
        progress_stream: TextIO | None = None,
        progress_interval: float = 0.5,
        live_status: bool = False,
        task_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        max_pool_rebuilds: int = 5,
        checkpoint_every: int | None = None,
        checkpoint_dir: Path | str | None = None,
        broker: str | None = None,
        broker_auth_token: str | None = None,
        broker_tls_ca: Path | str | None = None,
        cprofile: bool = False,
    ) -> None:
        from repro.analysis.experiments import PROFILES, Profile
        from repro.errors import ExperimentError

        if broker is not None:
            from repro.distributed.broker import resolve_address

            resolve_address(broker)  # fail fast on malformed addresses
        self.broker = broker
        self.broker_auth_token = broker_auth_token
        self.broker_tls_ca = broker_tls_ca

        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ExperimentError(f"unknown profile {profile!r}; available: {sorted(PROFILES)}")
            profile = PROFILES[profile]
        if not isinstance(profile, Profile):
            raise ExperimentError(f"cannot use {profile!r} as a profile")
        if jobs < 1:
            raise ParallelExecutionError(f"jobs must be >= 1, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise ParallelExecutionError(f"task_timeout must be positive, got {task_timeout}")
        if max_retries < 0:
            raise ParallelExecutionError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ParallelExecutionError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if max_pool_rebuilds < 0:
            raise ParallelExecutionError(f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ParallelExecutionError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if checkpoint_every is not None and checkpoint_dir is None:
            if cache_dir is None:
                raise ParallelExecutionError(
                    "checkpoint_every needs a checkpoint_dir (or cache_dir to default under)"
                )
            checkpoint_dir = Path(cache_dir) / "checkpoints"
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self._shutdown_signal: int | None = None
        self.profile = profile
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if journal_path is None and cache_dir is not None:
            journal_path = Path(cache_dir) / "journal.jsonl"
        self.journal_path = Path(journal_path) if journal_path is not None else None
        if resume and self.journal_path is None:
            raise ParallelExecutionError("--resume needs a journal: pass cache_dir or journal_path")
        self.resume = resume
        self.progress_stream = progress_stream
        self.progress_interval = progress_interval
        self.live_status = live_status
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_pool_rebuilds = max_pool_rebuilds
        # Opt-in cProfile around each computed task; hotspots land in the
        # RunnerReport (and, via the CLI, the run manifest). Never affects
        # task digests or outcomes — it is runner plumbing like checkpoints.
        self.cprofile = cprofile

    # ------------------------------------------------------------------
    # graceful shutdown
    # ------------------------------------------------------------------

    def _install_signal_handlers(self) -> dict[int, Any]:
        """Route SIGINT/SIGTERM to the task-boundary shutdown flag.

        Returns the replaced handlers (for restoration); empty when not on
        the main thread, where ``signal.signal`` is unavailable — the sweep
        then simply keeps the process defaults.
        """
        previous: dict[int, Any] = {}

        def handle(signum: int, frame: Any) -> None:
            self._shutdown_signal = signum

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handle)
            except ValueError:  # not the main thread
                break
        return previous

    @staticmethod
    def _restore_signal_handlers(previous: dict[int, Any]) -> None:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    def _check_shutdown(self) -> None:
        """Raise :class:`GracefulShutdown` if a stop signal has arrived."""
        if self._shutdown_signal is not None:
            signum = self._shutdown_signal
            try:
                name = signal.Signals(signum).name
            except ValueError:  # pragma: no cover - unknown signal number
                name = str(signum)
            raise GracefulShutdown(
                f"received {name}: stopping at the task boundary "
                "(journal and checkpoints preserved for --resume)",
                signal_number=signum,
            )

    # ------------------------------------------------------------------
    # execution fabric
    # ------------------------------------------------------------------

    @staticmethod
    def _payload_label(payload: dict) -> str:
        """Display label of either task shape (measure or discover)."""
        if "experiment_id" in payload:
            return f"discover:{payload['experiment_id']}"
        return TaskSpec.from_payload(payload).label

    def _note_retry(self, payload: dict, attempts: int, error: str) -> None:
        """Telemetry for one retried task execution (no-op when disabled)."""
        tel = _telemetry_current()
        if tel is not None:
            tel.inc("task_retries_total")
            tel.emit(
                {
                    "type": "task",
                    "status": "retry",
                    "label": self._payload_label(payload),
                    "attempts": attempts,
                    "error": error,
                }
            )

    def _backoff_seconds(self, attempts: int, rng: random.Random) -> float:
        """Exponential backoff with deterministic jitter before retry N."""
        if self.retry_backoff <= 0:
            return 0.0
        return self.retry_backoff * (2 ** (attempts - 1)) * (1.0 + 0.25 * rng.random())

    def _run_tasks(
        self,
        fn: Callable[[dict], dict],
        payloads: Sequence[dict],
        report: RunnerReport,
    ) -> Iterator[tuple[dict, dict | TaskFailure]]:
        """Run ``fn`` over ``payloads``, yielding (payload, outcome) pairs.

        The outcome is ``fn``'s return value or a :class:`TaskFailure` once
        the task's retry budget is exhausted — exactly one pair per payload,
        in completion order (callers must not depend on ordering; all
        assembly is keyed). Worker crashes, hangs (with ``task_timeout``),
        and broken pools are absorbed per the class docstring.
        """
        items = [(payload, 0) for payload in payloads]
        if self.jobs == 1 or len(payloads) <= 1:
            yield from self._run_serial(fn, items, report)
            return
        yield from self._run_pooled(fn, items, report)

    def _run_serial(
        self,
        fn: Callable[[dict], dict],
        items: Sequence[tuple[dict, int]],
        report: RunnerReport,
    ) -> Iterator[tuple[dict, dict | TaskFailure]]:
        """In-process execution with retries (no timeouts: nothing to kill)."""
        rng = random.Random(0)
        for payload, attempts in items:
            while True:
                self._check_shutdown()
                attempts += 1
                try:
                    result = fn(payload)
                except Exception as err:
                    if attempts > self.max_retries:
                        yield payload, TaskFailure(
                            error=f"{type(err).__name__}: {err}", attempts=attempts
                        )
                        break
                    report.tasks_retried += 1
                    self._note_retry(payload, attempts, f"{type(err).__name__}: {err}")
                    delay = self._backoff_seconds(attempts, rng)
                    if delay:
                        time.sleep(delay)
                else:
                    yield payload, result
                    break

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear down a pool whose workers may be hung: terminate, don't wait."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - platform-specific races
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pooled(
        self,
        fn: Callable[[dict], dict],
        items: Sequence[tuple[dict, int]],
        report: RunnerReport,
    ) -> Iterator[tuple[dict, dict | TaskFailure]]:
        width = min(self.jobs, len(items))
        rng = random.Random(0)
        # (payload, attempts so far, earliest monotonic time to resubmit)
        pending: deque[tuple[dict, int, float]] = deque(
            (payload, attempts, 0.0) for payload, attempts in items
        )
        failed: list[tuple[dict, TaskFailure]] = []

        def requeue(payload: dict, attempts: int, error: str, timed_out: bool) -> None:
            """Count one failed execution; retry or quarantine."""
            if attempts > self.max_retries:
                failed.append(
                    (payload, TaskFailure(error=error, attempts=attempts, timed_out=timed_out))
                )
            else:
                report.tasks_retried += 1
                self._note_retry(payload, attempts, error)
                pending.append(
                    (payload, attempts, time.monotonic() + self._backoff_seconds(attempts, rng))
                )

        pool = ProcessPoolExecutor(max_workers=width)
        rebuilds = 0
        # future -> (payload, attempts including this execution, deadline)
        running: dict[Any, tuple[dict, int, float | None]] = {}
        try:
            while pending or running:
                self._check_shutdown()
                yield from failed
                failed.clear()

                # Submit ready work, keeping at most ``width`` tasks in
                # flight so a submission's deadline tracks its start time.
                now = time.monotonic()
                rotations = 0
                broken = False
                while pending and len(running) < width and rotations < len(pending):
                    payload, attempts, not_before = pending[0]
                    if not_before > now:
                        pending.rotate(-1)
                        rotations += 1
                        continue
                    pending.popleft()
                    deadline = now + self.task_timeout if self.task_timeout is not None else None
                    try:
                        future = pool.submit(fn, payload)
                    except (BrokenProcessPool, RuntimeError):
                        pending.appendleft((payload, attempts, not_before))
                        broken = True
                        break
                    running[future] = (payload, attempts + 1, deadline)

                if not broken and not running:
                    # Everything pending is backing off; sleep it out.
                    wake = min(entry[2] for entry in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                timed_out: list[Any] = []
                if not broken:
                    deadlines = [d for *_, d in running.values() if d is not None]
                    tick = None
                    if deadlines or pending:
                        horizon = min(deadlines) - time.monotonic() if deadlines else 0.5
                        tick = min(0.5, max(0.01, horizon))
                    done, _ = wait(set(running), timeout=tick, return_when=FIRST_COMPLETED)
                    for future in done:
                        payload, attempts, _ = running.pop(future)
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            requeue(
                                payload,
                                attempts,
                                "worker died (broken process pool)",
                                timed_out=False,
                            )
                        except Exception as err:
                            requeue(
                                payload,
                                attempts,
                                f"{type(err).__name__}: {err}",
                                timed_out=False,
                            )
                        else:
                            yield payload, result
                    now = time.monotonic()
                    timed_out = [
                        future
                        for future, (_, _, deadline) in running.items()
                        if deadline is not None and now > deadline
                    ]

                if broken or timed_out:
                    # A dead or hung worker poisons the whole pool: charge
                    # the responsible tasks one execution each, requeue the
                    # innocent in-flight ones untouched, and rebuild.
                    for future in timed_out:
                        payload, attempts, _ = running.pop(future)
                        requeue(
                            payload,
                            attempts,
                            f"timed out after {self.task_timeout}s",
                            timed_out=True,
                        )
                    for future, (payload, attempts, _) in list(running.items()):
                        if broken:
                            # The pool died with these in flight; any of
                            # them may be the killer, so each is charged.
                            requeue(
                                payload,
                                attempts,
                                "worker died (broken process pool)",
                                timed_out=False,
                            )
                        else:
                            pending.append((payload, attempts - 1, 0.0))
                    running.clear()
                    self._kill_pool(pool)
                    rebuilds += 1
                    report.pool_rebuilds += 1
                    if rebuilds > self.max_pool_rebuilds:
                        report.serial_fallback = True
                        yield from failed
                        failed.clear()
                        yield from self._run_serial(fn, [(p, a) for p, a, _ in pending], report)
                        pending.clear()
                        return
                    pool = ProcessPoolExecutor(max_workers=width)
            yield from failed
            failed.clear()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _run_broker_tasks(
        self,
        payloads: Sequence[dict],
        report: RunnerReport,
        progress: Any = None,
    ) -> Iterator[tuple[dict, dict | TaskFailure]]:
        """Execute the measure phase on a broker's worker fleet.

        Same (payload, outcome-or-failure) contract as :meth:`_run_tasks`;
        fleet events the broker forwards (worker join/leave, re-leases,
        retries) update the report counters and the live progress view as
        they stream in.
        """
        from repro.distributed.client import BrokerClient, RemoteTaskFailure

        tel = _telemetry_current()
        tracer = tel.tracer if tel is not None else None
        labels = {
            TaskSpec.from_payload(payload).digest: TaskSpec.from_payload(payload).label
            for payload in payloads
        }

        def on_event(event: dict) -> None:
            kind = event.get("kind")
            if kind == "span":
                # Broker-minted lifecycle spans (queued/leased) stream in
                # as events; they belong in the trace file, not the fleet
                # counters.
                if tracer is not None and isinstance(event.get("span"), dict):
                    tracer.add(event["span"])
                return
            if kind == "fleet-stats":
                # Aggregated fleet quantiles for the live status line; no
                # counter bookkeeping (they are a gauge, not an event).
                if progress is not None:
                    progress.note_fleet_event(event)
                return
            if kind == "re-lease":
                report.tasks_releases += 1
            elif kind == "reattach":
                # A worker that outlived a broken link (or the broker's own
                # restart) kept computing and re-attached its lease.
                report.tasks_reattached += 1
            elif kind == "client-reconnect":
                # Synthetic, client-minted: our submit stream survived a
                # broker outage and resubmitted the remainder.
                report.broker_reconnects += 1
            elif kind == "retry":
                report.tasks_retried += 1
                if tel is not None:
                    tel.inc("task_retries_total")
                    tel.emit(
                        {
                            "type": "task",
                            "status": "retry",
                            "label": labels.get(event.get("key"), "remote"),
                            "attempts": int(event.get("attempts", 1)),
                            "error": str(event.get("error", "remote failure")),
                        }
                    )
            if tel is not None:
                tel.inc("fleet_events_total", kind=str(kind))
                tel.emit({"type": "fleet", **{k: v for k, v in event.items() if k != "type"}})
            if progress is not None:
                progress.note_fleet_event(event)

        client = BrokerClient(
            self.broker,
            on_event=on_event,
            auth_token=self.broker_auth_token,
            tls_ca=self.broker_tls_ca,
        )
        for payload, bundle in client.run_tasks(list(payloads)):
            self._check_shutdown()
            if isinstance(bundle, RemoteTaskFailure):
                error = bundle.error
                if bundle.releases:
                    error += f" (after {bundle.releases} re-lease(s))"
                yield payload, TaskFailure(error=error, attempts=bundle.attempts)
                continue
            yield payload, bundle

    # ------------------------------------------------------------------
    # main flow
    # ------------------------------------------------------------------

    def run(self, experiment_ids: Iterable[str]) -> RunnerReport:
        """Execute ``experiment_ids`` under this runner's configuration."""
        from repro.analysis.experiments import get_experiment

        ids = list(experiment_ids)
        for experiment_id in ids:
            get_experiment(experiment_id)  # fail fast on unknown ids

        started = time.perf_counter()
        report = RunnerReport(experiments_total=len(ids))
        prof = profile_payload(self.profile)
        self._shutdown_signal = None
        previous_handlers = self._install_signal_handlers()

        journal_state = JournalState()
        if self.resume and self.journal_path is not None:
            journal_state = Journal.load(self.journal_path)
            report.journal_corrupt_lines = journal_state.corrupt_lines
        journal = (
            Journal(self.journal_path, resume=self.resume)
            if self.journal_path is not None
            else None
        )

        try:
            with _span("discover", component="runner", emit=True):
                ready, plans = self._discover(ids, prof, journal_state, journal, report)
            with _span("measure", component="runner", emit=True):
                outcomes = self._measure(ids, ready, plans, journal_state, journal, report)
            with _span("replay", component="runner", emit=True):
                for experiment_id in ids:
                    if experiment_id in report.failures:
                        continue
                    if experiment_id in ready:
                        result = ready[experiment_id]
                    else:
                        try:
                            replay = ReplayContext(outcomes)
                            with use_context(replay):
                                result = get_experiment(experiment_id)(self.profile)
                        except ParallelExecutionError as err:
                            # Quarantined tasks left holes in the outcome
                            # set; this experiment fails, the sweep
                            # continues.
                            report.failures[experiment_id] = str(err)
                            report.experiments_failed += 1
                            continue
                        self._finish_experiment(experiment_id, prof, result, journal)
                    report.results.append(result)
        finally:
            # The journal's per-entry fsync means every finished task is
            # already durable; closing here is what makes a GracefulShutdown
            # (or any crash unwinding through this frame) resume-safe.
            if journal is not None:
                journal.close()
            self._restore_signal_handlers(previous_handlers)
        report.wall_seconds = time.perf_counter() - started
        return report

    def _finish_experiment(
        self, experiment_id: str, prof: dict, result: Any, journal: Journal | None
    ) -> None:
        key = experiment_digest(experiment_id, prof)
        payload = result_payload(result)
        if journal is not None:
            journal.append_experiment(key, experiment_id, payload)
        if self.cache is not None:
            self.cache.put(key, {"experiment_id": experiment_id, "result": payload})

    def _discover(
        self,
        ids: list[str],
        prof: dict,
        journal_state: JournalState,
        journal: Journal | None,
        report: RunnerReport,
    ) -> tuple[dict[str, Any], dict[str, list[dict]]]:
        """Phase 1: resolve finished experiments, plan the rest."""
        ready: dict[str, Any] = {}
        to_discover: list[dict] = []
        for experiment_id in ids:
            key = experiment_digest(experiment_id, prof)
            if key in journal_state.experiments:
                ready[experiment_id] = result_from_payload(journal_state.experiments[key])
                report.experiments_from_journal += 1
                continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    ready[experiment_id] = result_from_payload(cached["result"])
                    report.experiments_from_cache += 1
                    continue
            to_discover.append({"experiment_id": experiment_id, "profile": prof})

        plans: dict[str, list[dict]] = {}
        for payload, found in self._run_tasks(discover_experiment, to_discover, report):
            experiment_id = payload["experiment_id"]
            if isinstance(found, TaskFailure):
                report.failures[experiment_id] = found.error
                report.experiments_failed += 1
                continue
            report.timings.add(f"discover:{experiment_id}", found["elapsed"], group="discover")
            if found["result"] is not None:
                # The generator made no measurement calls: its recording
                # run was the real run and the result is already final.
                result = result_from_payload(found["result"])
                ready[experiment_id] = result
                self._finish_experiment(experiment_id, prof, result, journal)
            else:
                plans[experiment_id] = found["points"]
        return ready, plans

    def _measure(
        self,
        ids: list[str],
        ready: dict[str, Any],
        plans: dict[str, list[dict]],
        journal_state: JournalState,
        journal: Journal | None,
        report: RunnerReport,
    ) -> dict[str, list[dict]]:
        """Phase 2: execute every planned (cell, replicate) exactly once."""
        # Merge the plans into one deduplicated spec set; a point requested
        # by several experiments keeps its largest replicate count.
        points: dict[str, dict] = {}
        for experiment_id in ids:
            for point in plans.get(experiment_id, ()):
                spec0 = TaskSpec(point["kind"], point["params"], 0)
                entry = points.setdefault(spec0.point_key, {**point, "replicates": 0})
                entry["replicates"] = max(entry["replicates"], point["replicates"])

        specs: list[TaskSpec] = []
        for point in points.values():
            for replicate in range(point["replicates"]):
                specs.append(TaskSpec(point["kind"], point["params"], replicate))

        outcomes: dict[str, list[dict | None]] = {
            key: [None] * point["replicates"] for key, point in points.items()
        }
        report.tasks_total = len(specs)
        progress: ProgressReporter | None = None
        if self.progress_stream is not None:
            reporter_cls = LiveStatusReporter if self.live_status else ProgressReporter
            kwargs = {"report": report} if self.live_status else {}
            progress = reporter_cls(
                total=len(specs),
                jobs=self.jobs,
                stream=self.progress_stream,
                min_interval=self.progress_interval,
                **kwargs,
            )
        tel = _telemetry_current()
        tracer = tel.tracer if tel is not None else None
        # digest -> {trace, root span id, submit time}; populated when a
        # task enters the compute queue, consumed when its result lands.
        pending_traces: dict[str, dict[str, Any]] = {}
        profiled_hotspots: list[list[dict]] = []

        def account(spec: TaskSpec, source: str, elapsed: float = 0.0) -> None:
            """Telemetry for one task leaving the queue (no-op when off)."""
            if tel is None:
                return
            tel.inc("runner_tasks_total", source=source)
            tel.emit(
                {
                    "type": "task",
                    "status": "done",
                    "source": source,
                    "label": spec.label,
                    "elapsed": round(elapsed, 6),
                }
            )

        quarantined_points: set[str] = set()

        def quarantine(spec: TaskSpec, error: str, attempts: int, journaled: bool) -> None:
            report.tasks_quarantined += 1
            report.quarantined.append(
                {
                    "label": spec.label,
                    "key": spec.digest,
                    "error": error,
                    "attempts": attempts,
                }
            )
            quarantined_points.add(spec.point_key)
            if journal is not None and not journaled:
                journal.append_quarantine(spec.digest, spec.payload(), error, attempts)
            if tel is not None:
                tel.inc("tasks_quarantined_total")
                tel.emit(
                    {
                        "type": "task",
                        "status": "quarantined",
                        "label": spec.label,
                        "attempts": attempts,
                        "error": error,
                    }
                )
            if progress is not None:
                progress.task_done(spec.label, 0.0, source="quarantined")

        to_compute: list[dict] = []
        for spec in specs:
            digest = spec.digest
            journaled = journal_state.tasks.get(digest)
            if journaled is not None:
                outcomes[spec.point_key][spec.replicate] = journaled
                report.tasks_from_journal += 1
                account(spec, "journal")
                if progress is not None:
                    progress.task_done(spec.label, 0.0, source="journal")
                continue
            past_quarantine = journal_state.quarantined.get(digest)
            if past_quarantine is not None:
                # Quarantine is sticky across --resume: report it again
                # instead of burning the retry budget on a known-bad task.
                quarantine(
                    spec,
                    past_quarantine["error"] + " (quarantined in journal)",
                    int(past_quarantine["attempts"]),
                    journaled=True,
                )
                continue
            cached = self.cache.get(digest) if self.cache is not None else None
            if cached is not None:
                outcomes[spec.point_key][spec.replicate] = cached["outcome"]
                # An ``origin`` field marks an entry uploaded by a remote
                # worker (broker cache sync); account it as a remote-cache
                # hit and keep the provenance in the journal so --resume
                # and audits can tell where the bytes came from.
                origin = cached.get("origin")
                if isinstance(origin, dict):
                    source = "remote-cache"
                    report.tasks_from_remote_cache += 1
                    provenance = {"source": "remote-cache", **origin}
                else:
                    source = "cache"
                    report.tasks_from_cache += 1
                    provenance = None
                # Mirror cache hits into the journal so a later --resume
                # can replay this run from the journal alone.
                if journal is not None:
                    journal.append_task(
                        digest, spec.payload(), cached["outcome"], provenance=provenance
                    )
                account(spec, source)
                if progress is not None:
                    progress.task_done(spec.label, 0.0, source=source)
                continue
            payload = spec.payload()
            if self.broker is None and self.checkpoint_dir is not None:
                # Runner plumbing, not task identity: from_payload/digest
                # ignore this key, so cache/journal keys are unchanged.
                payload["checkpoint"] = {
                    "dir": str(self.checkpoint_dir / digest),
                    "every": self.checkpoint_every,
                }
            if self.cprofile:
                payload["cprofile"] = True  # plumbing key, digest-invisible
            if tracer is not None:
                # Mint the trace at submit time: the root span id is
                # reserved now so every downstream span (broker lease,
                # worker running) can parent onto it; the root itself is
                # written once the task journals.
                trace_id = trace_id_for(digest)
                root_id = tracer.mint_id()
                pending_traces[digest] = {
                    "trace": trace_id,
                    "root": root_id,
                    "submitted": time.time(),
                }
                payload["trace"] = {"trace": trace_id, "parent": root_id}
            to_compute.append(payload)

        if self.broker is not None:
            task_stream = self._run_broker_tasks(to_compute, report, progress)
        else:
            task_stream = self._run_tasks(execute_task, to_compute, report)
        for payload, computed in task_stream:
            spec = TaskSpec.from_payload(payload)
            if isinstance(computed, TaskFailure):
                if tracer is not None:
                    entry = pending_traces.pop(spec.digest, None)
                    if entry is not None:
                        tracer.add(
                            build_span(
                                entry["trace"],
                                entry["root"],
                                "task",
                                entry["submitted"],
                                time.time(),
                                label=spec.label,
                                digest=spec.digest,
                                source="quarantined",
                                error=computed.error,
                            )
                        )
                quarantine(spec, computed.error, computed.attempts, journaled=False)
                continue
            outcome, elapsed = computed["outcome"], computed["elapsed"]
            outcomes[spec.point_key][spec.replicate] = outcome
            worker = computed.get("worker") if self.broker is not None else None
            bundle_source = computed.get("source", "computed")
            if self.broker is not None and bundle_source in ("cache", "remote-cache"):
                # The broker already had this outcome (its own cache or a
                # concurrent client's in-flight duplicate); nobody computed
                # anything for us just now.
                source = "remote-cache"
                report.tasks_from_remote_cache += 1
                provenance: dict | None = {"source": "remote-cache"}
                if worker:
                    provenance["worker"] = worker
            elif worker is not None:
                source = "remote"
                report.tasks_computed += 1
                report.tasks_remote += 1
                report.remote_workers[worker] = report.remote_workers.get(worker, 0) + 1
                report.timings.add(spec.label, elapsed, group=spec.kind)
                provenance = {"source": "remote", "worker": worker}
                if computed.get("releases"):
                    provenance["releases"] = int(computed["releases"])
            else:
                source = "computed"
                report.tasks_computed += 1
                report.timings.add(spec.label, elapsed, group=spec.kind)
                provenance = None
            resumed_round = computed.get("resumed_round")
            if resumed_round is not None:
                provenance = dict(provenance or {})
                provenance["resumed_round"] = int(resumed_round)
            if journal is not None:
                journal.append_task(spec.digest, spec.payload(), outcome, provenance=provenance)
            if self.cache is not None:
                entry = {"spec": spec.payload(), "outcome": outcome}
                if source in ("remote", "remote-cache"):
                    # Keep the upload's provenance so later local runs can
                    # account their hits as remote-cache.
                    entry["origin"] = {"worker": worker} if worker else {}
                self.cache.put(spec.digest, entry)
            if self.broker is None and self.checkpoint_dir is not None:
                # The outcome is durable (journaled and/or cached); its
                # snapshots have served their purpose.
                shutil.rmtree(self.checkpoint_dir / spec.digest, ignore_errors=True)
            if self.cprofile and computed.get("hotspots"):
                profiled_hotspots.append(computed["hotspots"])
            if tracer is not None:
                entry = pending_traces.pop(spec.digest, None)
                if entry is not None:
                    trace_id, root_id = entry["trace"], entry["root"]
                    bundle_spans = computed.get("spans") or []
                    for span in bundle_spans:
                        tracer.add(span)  # worker-minted: running/checkpoint
                    if self.broker is None:
                        # No broker to time the queue; approximate it as
                        # submit → compute start (pool backlog + pickling).
                        running = next(
                            (s for s in bundle_spans if s["name"] == "running"), None
                        )
                        queue_end = running["start"] if running else time.time()
                        tracer.record(
                            trace_id, "queued", entry["submitted"], queue_end, parent=root_id
                        )
                    finished = time.time()
                    tracer.record(trace_id, "journaled", finished, parent=root_id)
                    attrs: dict[str, Any] = {
                        "label": spec.label,
                        "digest": spec.digest,
                        "source": source,
                    }
                    if worker:
                        attrs["worker"] = worker
                    if computed.get("releases"):
                        attrs["releases"] = int(computed["releases"])
                    tracer.add(
                        build_span(
                            trace_id, root_id, "task", entry["submitted"], finished, **attrs
                        )
                    )
            account(spec, source, elapsed if source in ("computed", "remote") else 0.0)
            if progress is not None:
                progress.task_done(
                    spec.label,
                    elapsed if source in ("computed", "remote") else 0.0,
                    source=source,
                    pid=computed.get("pid"),
                    worker=worker,
                    outcome=outcome,
                    kind=spec.kind,
                    params=spec.params,
                )

        if profiled_hotspots:
            from repro.telemetry.profiling import merge_hotspots

            report.tasks_profiled += len(profiled_hotspots)
            seeded = [report.hotspots] if report.hotspots else []
            report.hotspots = merge_hotspots(seeded + profiled_hotspots)

        complete: dict[str, list[dict]] = {}
        for key, values in outcomes.items():
            if any(value is None for value in values):
                if key in quarantined_points:
                    # Experiments needing this point fail at replay time
                    # with a per-experiment error; the sweep continues.
                    continue
                raise ParallelExecutionError(  # pragma: no cover - defensive
                    f"measurement incomplete for point {key}"
                )
            complete[key] = values  # type: ignore[assignment]
        return complete


def run_experiments(
    experiment_ids: Iterable[str],
    profile: Any = "default",
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    resume: bool = False,
    journal_path: Path | str | None = None,
    progress_stream: TextIO | None = None,
    live_status: bool = False,
    task_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    checkpoint_every: int | None = None,
    checkpoint_dir: Path | str | None = None,
    broker: str | None = None,
    broker_auth_token: str | None = None,
    broker_tls_ca: Path | str | None = None,
    cprofile: bool = False,
) -> RunnerReport:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(
        profile=profile,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        journal_path=journal_path,
        progress_stream=progress_stream,
        live_status=live_status,
        task_timeout=task_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        broker=broker,
        broker_auth_token=broker_auth_token,
        broker_tls_ca=broker_tls_ca,
        cprofile=cprofile,
    )
    return runner.run(experiment_ids)
