"""Process-pool experiment runner: plan → measure → replay.

:class:`ExperimentRunner` executes a set of experiments in three phases:

1. **Discover** — each experiment generator runs under a
   :class:`~repro.parallel.context.RecordingContext` (on a worker, so pure
   driver experiments parallelise across each other) to extract its grid of
   measurement cells.
2. **Measure** — every (cell, replicate) becomes an independent task. Tasks
   already present in the resume journal or the content-addressed cache are
   served from disk; the rest fan out over a process pool. Each completed
   task is journaled (fsync'd) before the runner proceeds, so a crash loses
   at most the in-flight tasks.
3. **Replay** — each generator re-runs with a
   :class:`~repro.parallel.context.ReplayContext` serving the precomputed
   outcomes through the same aggregation as the serial path, yielding
   results bit-identical to ``--jobs 1``.

Determinism: replicate streams depend only on ``(seed, replicate)`` and
cell seeds only on the experiment's loop indices, so worker scheduling
cannot influence any number in the output.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence, TextIO

from repro.errors import ParallelExecutionError
from repro.parallel.cache import ResultCache
from repro.parallel.context import ReplayContext, use_context
from repro.parallel.journal import Journal, JournalState
from repro.parallel.keys import experiment_digest
from repro.parallel.progress import ProgressReporter, TimingStats
from repro.parallel.tasks import (
    TaskSpec,
    discover_experiment,
    execute_task,
    profile_payload,
    result_from_payload,
    result_payload,
)

__all__ = ["ExperimentRunner", "RunnerReport", "run_experiments"]


@dataclass
class RunnerReport:
    """What a runner invocation did, and what it produced.

    ``results`` preserves the requested experiment order. The counters
    split every task and experiment by where its result came from —
    computed now, replayed from the resume journal, or served by the cache.
    """

    results: list[Any] = field(default_factory=list)
    tasks_total: int = 0
    tasks_computed: int = 0
    tasks_from_journal: int = 0
    tasks_from_cache: int = 0
    experiments_total: int = 0
    experiments_from_journal: int = 0
    experiments_from_cache: int = 0
    journal_corrupt_lines: int = 0
    timings: TimingStats = field(default_factory=TimingStats)
    wall_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return self.tasks_from_cache + self.experiments_from_cache

    @property
    def cache_misses(self) -> int:
        return self.tasks_computed

    def summary_lines(self) -> list[str]:
        lines = [
            f"experiments: {self.experiments_total} "
            f"(journal {self.experiments_from_journal}, cache {self.experiments_from_cache})",
            f"tasks: {self.tasks_total} (computed {self.tasks_computed}, "
            f"journal {self.tasks_from_journal}, cache {self.tasks_from_cache})",
            f"wall clock: {self.wall_seconds:.2f}s",
        ]
        if self.journal_corrupt_lines:
            lines.append(f"journal: skipped {self.journal_corrupt_lines} torn line(s)")
        return lines


class ExperimentRunner:
    """Parallel, resumable executor for the experiment registry.

    Parameters
    ----------
    profile:
        Profile name or :class:`~repro.analysis.experiments.Profile`.
    jobs:
        Worker processes; 1 executes everything in-process (still with
        journal/cache support).
    cache_dir:
        Directory for the content-addressed result cache. Also the default
        home of the resume journal (``<cache_dir>/journal.jsonl``).
    resume:
        Replay the journal before computing, skipping finished work.
    journal_path:
        Explicit journal location (overrides the cache-dir default).
    progress_stream:
        Where to write progress/ETA lines (None disables progress output).
    """

    def __init__(
        self,
        profile: Any = "default",
        jobs: int = 1,
        cache_dir: Path | str | None = None,
        resume: bool = False,
        journal_path: Path | str | None = None,
        progress_stream: TextIO | None = None,
        progress_interval: float = 0.5,
    ) -> None:
        from repro.analysis.experiments import PROFILES, Profile
        from repro.errors import ExperimentError

        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ExperimentError(
                    f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
                )
            profile = PROFILES[profile]
        if not isinstance(profile, Profile):
            raise ExperimentError(f"cannot use {profile!r} as a profile")
        if jobs < 1:
            raise ParallelExecutionError(f"jobs must be >= 1, got {jobs}")
        self.profile = profile
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if journal_path is None and cache_dir is not None:
            journal_path = Path(cache_dir) / "journal.jsonl"
        self.journal_path = Path(journal_path) if journal_path is not None else None
        if resume and self.journal_path is None:
            raise ParallelExecutionError(
                "--resume needs a journal: pass cache_dir or journal_path"
            )
        self.resume = resume
        self.progress_stream = progress_stream
        self.progress_interval = progress_interval

    # ------------------------------------------------------------------
    # execution fabric
    # ------------------------------------------------------------------

    def _map_unordered(
        self, fn: Callable[[dict], dict], payloads: Sequence[dict]
    ) -> Iterator[tuple[dict, dict]]:
        """Run ``fn`` over ``payloads``, yielding (payload, result) pairs.

        With one job (or one payload) this is a plain in-process loop;
        otherwise a process pool, yielding in completion order. Callers
        must not depend on ordering — all assembly is keyed.
        """
        if self.jobs == 1 or len(payloads) <= 1:
            for payload in payloads:
                yield payload, fn(payload)
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(payloads))) as pool:
            futures = {pool.submit(fn, payload): payload for payload in payloads}
            for future in as_completed(futures):
                yield futures[future], future.result()

    # ------------------------------------------------------------------
    # main flow
    # ------------------------------------------------------------------

    def run(self, experiment_ids: Iterable[str]) -> RunnerReport:
        """Execute ``experiment_ids`` under this runner's configuration."""
        from repro.analysis.experiments import get_experiment

        ids = list(experiment_ids)
        for experiment_id in ids:
            get_experiment(experiment_id)  # fail fast on unknown ids

        started = time.perf_counter()
        report = RunnerReport(experiments_total=len(ids))
        prof = profile_payload(self.profile)

        journal_state = JournalState()
        if self.resume and self.journal_path is not None:
            journal_state = Journal.load(self.journal_path)
            report.journal_corrupt_lines = journal_state.corrupt_lines
        journal = (
            Journal(self.journal_path, resume=self.resume)
            if self.journal_path is not None
            else None
        )

        try:
            ready, plans = self._discover(ids, prof, journal_state, journal, report)
            outcomes = self._measure(ids, ready, plans, journal_state, journal, report)
            for experiment_id in ids:
                if experiment_id in ready:
                    result = ready[experiment_id]
                else:
                    replay = ReplayContext(outcomes)
                    with use_context(replay):
                        result = get_experiment(experiment_id)(self.profile)
                    self._finish_experiment(experiment_id, prof, result, journal)
                report.results.append(result)
        finally:
            if journal is not None:
                journal.close()
        report.wall_seconds = time.perf_counter() - started
        return report

    def _finish_experiment(
        self, experiment_id: str, prof: dict, result: Any, journal: Journal | None
    ) -> None:
        key = experiment_digest(experiment_id, prof)
        payload = result_payload(result)
        if journal is not None:
            journal.append_experiment(key, experiment_id, payload)
        if self.cache is not None:
            self.cache.put(key, {"experiment_id": experiment_id, "result": payload})

    def _discover(
        self,
        ids: list[str],
        prof: dict,
        journal_state: JournalState,
        journal: Journal | None,
        report: RunnerReport,
    ) -> tuple[dict[str, Any], dict[str, list[dict]]]:
        """Phase 1: resolve finished experiments, plan the rest."""
        ready: dict[str, Any] = {}
        to_discover: list[dict] = []
        for experiment_id in ids:
            key = experiment_digest(experiment_id, prof)
            if key in journal_state.experiments:
                ready[experiment_id] = result_from_payload(journal_state.experiments[key])
                report.experiments_from_journal += 1
                continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    ready[experiment_id] = result_from_payload(cached["result"])
                    report.experiments_from_cache += 1
                    continue
            to_discover.append({"experiment_id": experiment_id, "profile": prof})

        plans: dict[str, list[dict]] = {}
        for payload, found in self._map_unordered(discover_experiment, to_discover):
            experiment_id = payload["experiment_id"]
            report.timings.add(f"discover:{experiment_id}", found["elapsed"])
            if found["result"] is not None:
                # The generator made no measurement calls: its recording
                # run was the real run and the result is already final.
                result = result_from_payload(found["result"])
                ready[experiment_id] = result
                self._finish_experiment(experiment_id, prof, result, journal)
            else:
                plans[experiment_id] = found["points"]
        return ready, plans

    def _measure(
        self,
        ids: list[str],
        ready: dict[str, Any],
        plans: dict[str, list[dict]],
        journal_state: JournalState,
        journal: Journal | None,
        report: RunnerReport,
    ) -> dict[str, list[dict]]:
        """Phase 2: execute every planned (cell, replicate) exactly once."""
        # Merge the plans into one deduplicated spec set; a point requested
        # by several experiments keeps its largest replicate count.
        points: dict[str, dict] = {}
        for experiment_id in ids:
            for point in plans.get(experiment_id, ()):
                spec0 = TaskSpec(point["kind"], point["params"], 0)
                entry = points.setdefault(
                    spec0.point_key, {**point, "replicates": 0}
                )
                entry["replicates"] = max(entry["replicates"], point["replicates"])

        specs: list[TaskSpec] = []
        for point in points.values():
            for replicate in range(point["replicates"]):
                specs.append(TaskSpec(point["kind"], point["params"], replicate))

        outcomes: dict[str, list[dict | None]] = {
            key: [None] * point["replicates"] for key, point in points.items()
        }
        report.tasks_total = len(specs)
        progress = ProgressReporter(
            total=len(specs),
            jobs=self.jobs,
            stream=self.progress_stream,
            min_interval=self.progress_interval,
        ) if self.progress_stream is not None else None

        to_compute: list[dict] = []
        for spec in specs:
            digest = spec.digest
            journaled = journal_state.tasks.get(digest)
            if journaled is not None:
                outcomes[spec.point_key][spec.replicate] = journaled
                report.tasks_from_journal += 1
                if progress is not None:
                    progress.task_done(spec.label, 0.0, source="journal")
                continue
            cached = self.cache.get(digest) if self.cache is not None else None
            if cached is not None:
                outcomes[spec.point_key][spec.replicate] = cached["outcome"]
                report.tasks_from_cache += 1
                # Mirror cache hits into the journal so a later --resume
                # can replay this run from the journal alone.
                if journal is not None:
                    journal.append_task(digest, spec.payload(), cached["outcome"])
                if progress is not None:
                    progress.task_done(spec.label, 0.0, source="cache")
                continue
            to_compute.append(spec.payload())

        for payload, computed in self._map_unordered(execute_task, to_compute):
            spec = TaskSpec.from_payload(payload)
            outcome, elapsed = computed["outcome"], computed["elapsed"]
            outcomes[spec.point_key][spec.replicate] = outcome
            report.tasks_computed += 1
            report.timings.add(spec.label, elapsed)
            if journal is not None:
                journal.append_task(spec.digest, spec.payload(), outcome)
            if self.cache is not None:
                self.cache.put(spec.digest, {"spec": spec.payload(), "outcome": outcome})
            if progress is not None:
                progress.task_done(spec.label, elapsed, source="computed")

        complete: dict[str, list[dict]] = {}
        for key, values in outcomes.items():
            if any(value is None for value in values):  # pragma: no cover - defensive
                raise ParallelExecutionError(f"measurement incomplete for point {key}")
            complete[key] = values  # type: ignore[assignment]
        return complete


def run_experiments(
    experiment_ids: Iterable[str],
    profile: Any = "default",
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    resume: bool = False,
    journal_path: Path | str | None = None,
    progress_stream: TextIO | None = None,
) -> RunnerReport:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(
        profile=profile,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        journal_path=journal_path,
        progress_stream=progress_stream,
    )
    return runner.run(experiment_ids)
