"""Content-addressed on-disk result cache.

Each entry is a small JSON file named by the sha256 of its semantic key
(measurement kind, parameters, seed, replicate, and a fingerprint of the
code-relevant modules — see :mod:`repro.parallel.keys`). Writes go through
a temp file and :func:`os.replace`, so a cache entry is either absent or
complete, never torn.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """Directory-backed cache mapping content digests to JSON payloads."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached payload for ``key``, or None on miss.

        Unreadable entries (truncated by an earlier crash, foreign files)
        are treated as misses.
        """
        path = self._path(key)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically store ``payload`` under ``key``."""
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
