"""Canonical keys and code fingerprints for journal/cache addressing.

A measurement is identified by its *semantic* inputs — kind, parameters,
seed, replicate index — plus a fingerprint of the source modules whose
behaviour determines the result. Keying on the fingerprint means a stale
journal or cache written by different code simply stops matching: entries
are never wrong, only cold.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = [
    "canonical_json",
    "point_key",
    "task_digest",
    "experiment_digest",
    "measurement_fingerprint",
    "package_fingerprint",
]

#: Modules whose source determines the outcome of a single measurement task.
MEASUREMENT_MODULES = (
    "repro.rng",
    "repro.engine.driver",
    "repro.engine.metrics",
    "repro.engine.stability",
    "repro.core.capped",
    "repro.core.meanfield",
    "repro.processes.greedy",
    "repro.analysis.sweep",
)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_key(kind: str, params: dict[str, Any]) -> str:
    """In-run identity of one parameter point (no code fingerprint)."""
    return canonical_json({"kind": kind, "params": params})


def _digest(payload: dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@lru_cache(maxsize=None)
def _hash_files(paths: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for path in paths:
        digest.update(path.encode("utf-8"))
        digest.update(Path(path).read_bytes())
    return digest.hexdigest()[:16]


def measurement_fingerprint() -> str:
    """Fingerprint of the modules a measurement task depends on."""
    paths = tuple(str(Path(importlib.import_module(name).__file__)) for name in MEASUREMENT_MODULES)
    return _hash_files(paths)


def package_fingerprint() -> str:
    """Fingerprint of the whole ``repro`` package source.

    Experiment generators may touch any module (coupled runs, ablation
    processes, workload models), so whole-experiment cache entries key on
    everything.
    """
    import repro

    root = Path(repro.__file__).parent
    paths = tuple(sorted(str(p) for p in root.rglob("*.py")))
    return _hash_files(paths)


def task_digest(kind: str, params: dict[str, Any], replicate: int) -> str:
    """Content address of one replicate measurement."""
    return _digest(
        {
            "kind": kind,
            "params": params,
            "replicate": replicate,
            "code": measurement_fingerprint(),
        }
    )


def experiment_digest(experiment_id: str, profile: dict[str, Any]) -> str:
    """Content address of one whole experiment under a profile."""
    return _digest(
        {
            "experiment": experiment_id,
            "profile": profile,
            "code": package_fingerprint(),
        }
    )
