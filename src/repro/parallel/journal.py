"""Crash-safe JSONL journal of completed work.

Every finished measurement (and every finished experiment) is appended as
one JSON line, flushed and fsynced before the runner moves on. After a
crash or Ctrl-C the journal is replayed by :meth:`Journal.load`: complete
lines become resumable results, a torn final line (the write the crash
interrupted) is skipped and counted, never fatal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Journal", "JournalState"]


@dataclass
class JournalState:
    """Parsed content of a journal file.

    ``tasks`` maps a task digest to its outcome payload; ``experiments``
    maps an experiment digest to a serialised result; ``quarantined`` maps
    a task digest to its quarantine record (a task that exhausted its retry
    budget — a resumed run reports it instead of re-running it forever).
    ``corrupt_lines`` counts unparseable lines (torn writes) that were
    skipped.
    """

    tasks: dict[str, dict[str, Any]] = field(default_factory=dict)
    experiments: dict[str, dict[str, Any]] = field(default_factory=dict)
    quarantined: dict[str, dict[str, Any]] = field(default_factory=dict)
    corrupt_lines: int = 0

    @property
    def entries(self) -> int:
        return len(self.tasks) + len(self.experiments) + len(self.quarantined)


class Journal:
    """Append-only JSONL journal with per-entry durability.

    Parameters
    ----------
    path:
        Journal file location (parent directories are created).
    resume:
        If True, append to an existing journal; otherwise start fresh
        (truncating any stale journal from a previous run).
    """

    def __init__(self, path: Path | str, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab" if resume else "wb")
        self.entries_written = 0

    def append(self, entry: dict[str, Any]) -> None:
        """Durably append one entry (atomic single-line write + fsync)."""
        line = json.dumps(entry, sort_keys=True) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.entries_written += 1

    def append_task(
        self,
        key: str,
        spec: dict[str, Any],
        outcome: dict[str, Any],
        provenance: dict[str, Any] | None = None,
    ) -> None:
        """Journal a finished task.

        ``provenance`` records *how* the outcome was produced (e.g. that the
        worker resumed from a checkpoint at round R). It is informational
        only: :meth:`load` keys results by digest and ignores it, so
        checkpoint-resumed outcomes stay content-addressed exactly like
        uninterrupted ones.
        """
        entry = {"type": "task", "key": key, "spec": spec, "outcome": outcome}
        if provenance:
            entry["provenance"] = provenance
        self.append(entry)

    def append_experiment(self, key: str, experiment_id: str, result: dict[str, Any]) -> None:
        self.append(
            {"type": "experiment", "key": key, "experiment_id": experiment_id, "result": result}
        )

    def append_quarantine(self, key: str, spec: dict[str, Any], error: str, attempts: int) -> None:
        self.append(
            {
                "type": "quarantine",
                "key": key,
                "spec": spec,
                "error": error,
                "attempts": attempts,
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def load(path: Path | str) -> JournalState:
        """Replay a journal file, tolerating torn or malformed lines."""
        state = JournalState()
        path = Path(path)
        if not path.exists():
            return state
        with open(path, "rb") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entry = json.loads(raw.decode("utf-8"))
                    kind = entry["type"]
                    key = entry["key"]
                    if kind == "task":
                        state.tasks[key] = entry["outcome"]
                        # A success trumps an earlier quarantine of the same
                        # task (e.g. journaled by a later resumed run).
                        state.quarantined.pop(key, None)
                    elif kind == "experiment":
                        state.experiments[key] = entry["result"]
                    elif kind == "quarantine":
                        if key not in state.tasks:
                            state.quarantined[key] = {
                                "spec": entry["spec"],
                                "error": entry["error"],
                                "attempts": entry["attempts"],
                            }
                    else:
                        state.corrupt_lines += 1
                except (ValueError, KeyError, UnicodeDecodeError):
                    state.corrupt_lines += 1
        return state
