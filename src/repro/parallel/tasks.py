"""Worker-side task functions (module-level, so they pickle cleanly).

Two task shapes cross the process boundary:

* :func:`execute_task` — run one replicate of one measurement cell and
  return its outcome payload (plus wall-clock elapsed);
* :func:`discover_experiment` — run an experiment generator under a
  :class:`~repro.parallel.context.RecordingContext` to extract its
  measurement plan. Generators that never call the sweep helpers (pure
  driver experiments such as ``dominance`` or the ablations) execute for
  real during discovery, so their full cost also lands on a worker; their
  finished result is returned directly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ParallelExecutionError
from repro.faults.chaos import maybe_chaos
from repro.parallel.context import RecordingContext, use_context
from repro.parallel.keys import point_key, task_digest

__all__ = [
    "TaskSpec",
    "execute_task",
    "discover_experiment",
    "profile_payload",
    "result_payload",
    "result_from_payload",
]


@dataclass(frozen=True)
class TaskSpec:
    """One replicate of one measurement cell."""

    kind: str
    params: dict[str, Any]
    replicate: int

    @property
    def point_key(self) -> str:
        return point_key(self.kind, self.params)

    @property
    def digest(self) -> str:
        return task_digest(self.kind, self.params, self.replicate)

    @property
    def label(self) -> str:
        parts = [self.kind]
        for name in ("n", "c", "d", "lam"):
            if name in self.params and self.params[name] is not None:
                value = self.params[name]
                parts.append(
                    f"{name}={value:.6g}" if isinstance(value, float) else f"{name}={value}"
                )
        parts.append(f"r{self.replicate}")
        return " ".join(parts)

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": self.params, "replicate": self.replicate}

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "TaskSpec":
        return TaskSpec(
            kind=payload["kind"],
            params=dict(payload["params"]),
            replicate=int(payload["replicate"]),
        )


def execute_task(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one replicate measurement; returns its outcome and timing.

    The optional ``checkpoint``/``trace``/``cprofile`` payload keys are
    runner plumbing, not part of the task identity:
    :meth:`TaskSpec.from_payload` ignores them, so the task digest — and
    hence the journal/cache key — is byte-identical with checkpointing,
    tracing, or profiling on or off. ``trace`` is a span context
    (``{"trace": id, "parent": span-id, "origin": minter-prefix}``): the
    worker then returns its lifecycle spans (``running``, and a
    ``checkpoint`` point span on resume) in the transient bundle.
    ``cprofile`` wraps the measurement in cProfile and returns top-N
    ``hotspots``. Journal and cache persist only the outcome, so neither
    ever affects results.
    """
    from repro.analysis.sweep import run_replicate

    checkpoint = payload.get("checkpoint") or {}
    checkpoint_dir = checkpoint.get("dir")
    checkpoint_every = checkpoint.get("every")
    trace_ctx = payload.get("trace") or None
    spec = TaskSpec.from_payload(payload)
    # Chaos hook for runner fault-tolerance tests: a no-op unless the
    # REPRO_CHAOS environment variable deliberately arms it.
    maybe_chaos(spec.label)
    resumed_round = None
    if checkpoint_dir is not None:
        from repro.checkpoint import CheckpointStore

        # Provenance peek only — the driver does its own (telemetry-visible)
        # restore from the same store when it starts stepping.
        resumed_round = CheckpointStore(checkpoint_dir).latest_round()
    start = time.perf_counter()
    started_unix = time.time()
    hotspots = None
    if payload.get("cprofile"):
        from repro.telemetry.profiling import profile_call

        outcome, hotspots = profile_call(
            run_replicate,
            spec.kind,
            spec.params,
            spec.replicate,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
    else:
        outcome = run_replicate(
            spec.kind,
            spec.params,
            spec.replicate,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
    elapsed = time.perf_counter() - start
    # The pid feeds per-worker throughput in --live-status; the journal
    # and cache persist only the outcome, so it never affects results.
    bundle = {
        "outcome": outcome.to_dict(),
        "elapsed": elapsed,
        "pid": os.getpid(),
        "resumed_round": resumed_round,
    }
    if hotspots is not None:
        bundle["hotspots"] = hotspots
    if trace_ctx and trace_ctx.get("trace"):
        from repro.telemetry.tracing import SpanBuffer

        spans = SpanBuffer(str(trace_ctx.get("origin") or f"p{os.getpid()}"))
        parent = trace_ctx.get("parent")
        running = spans.record(
            trace_ctx["trace"],
            "running",
            started_unix,
            started_unix + elapsed,
            parent=parent,
            pid=os.getpid(),
        )
        if resumed_round is not None:
            spans.record(
                trace_ctx["trace"],
                "checkpoint",
                started_unix,
                parent=running,
                resumed_round=resumed_round,
            )
        bundle["spans"] = spans.drain()
    return bundle


def profile_payload(profile: Any) -> dict[str, Any]:
    """Serialise a :class:`~repro.analysis.experiments.Profile`."""
    return {
        "name": profile.name,
        "n": profile.n,
        "measure": profile.measure,
        "replicates": profile.replicates,
        "seed": profile.seed,
    }


def result_payload(result: Any) -> dict[str, Any]:
    """Serialise an :class:`~repro.analysis.experiments.ExperimentResult`."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "profile": result.profile,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
        "verdicts": result.verdicts,
    }


def result_from_payload(payload: dict[str, Any]) -> Any:
    from repro.analysis.experiments import ExperimentResult

    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        profile=payload["profile"],
        columns=list(payload["columns"]),
        rows=list(payload["rows"]),
        notes=list(payload["notes"]),
        verdicts=dict(payload["verdicts"]),
    )


def discover_experiment(payload: dict[str, Any]) -> dict[str, Any]:
    """Extract an experiment's measurement plan (worker side).

    Returns ``{"points": [...], "result": ..., "elapsed": ...}`` where
    ``result`` is the finished experiment payload when the generator made
    no measurement calls (its recording run *was* the real run), else None.
    """
    from repro.analysis.experiments import PROFILES, Profile, get_experiment

    experiment_id = payload["experiment_id"]
    profile_dict = payload["profile"]
    profile = PROFILES.get(profile_dict["name"])
    if profile is None or profile_payload(profile) != profile_dict:
        profile = Profile(**profile_dict)
    generator = get_experiment(experiment_id)
    recorder = RecordingContext()
    start = time.perf_counter()
    with use_context(recorder):
        result = generator(profile)
    if result is None:  # defensive: a generator must return a result
        raise ParallelExecutionError(f"experiment {experiment_id!r} returned no result")
    return {
        "points": list(recorder.points.values()),
        "result": None if recorder.calls else result_payload(result),
        "elapsed": time.perf_counter() - start,
    }
