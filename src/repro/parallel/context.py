"""Measurement interception for record/replay parallel execution.

The experiment generators in :mod:`repro.analysis.experiments` are plain
serial functions calling :func:`~repro.analysis.sweep.measure_capped` /
``measure_greedy`` cell by cell. Instead of rewriting every generator into
a declarative grid, the sweep helpers consult the *active measurement
context* before doing any work:

* no context (the default) — measure serially, exactly as before;
* :class:`RecordingContext` — record the call's resolved parameters and
  return a cheap placeholder; running a generator under it yields the full
  list of measurement cells without simulating anything;
* :class:`ReplayContext` — serve precomputed replicate outcomes, assembled
  through the same aggregation as the serial path, so a generator re-run
  under it produces bit-identical results.

Because every cell's seed is a pure function of the experiment's loop
indices (never of previous results), the recorded plan is exact and the
replay pass is deterministic.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.errors import ParallelExecutionError
from repro.parallel.keys import point_key

__all__ = [
    "MeasurementContext",
    "RecordingContext",
    "ReplayContext",
    "active_context",
    "use_context",
]


@runtime_checkable
class MeasurementContext(Protocol):
    """Anything that can stand in for a point measurement."""

    def measure(self, kind: str, params: dict[str, Any], replicates: int) -> Any:
        """Handle one ``measure_capped``/``measure_greedy`` call."""
        ...  # pragma: no cover - protocol


_ACTIVE: contextvars.ContextVar[MeasurementContext | None] = contextvars.ContextVar(
    "repro_measurement_context", default=None
)


def active_context() -> MeasurementContext | None:
    """The measurement context installed for the current task, if any."""
    return _ACTIVE.get()


@contextmanager
def use_context(context: MeasurementContext) -> Iterator[MeasurementContext]:
    """Install ``context`` for the duration of the block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


class RecordingContext:
    """Collects measurement calls instead of executing them.

    ``points`` maps each point key to ``{"kind", "params", "replicates"}``;
    duplicate calls merge by taking the largest replicate count.
    """

    def __init__(self) -> None:
        self.points: dict[str, dict[str, Any]] = {}

    @property
    def calls(self) -> int:
        return len(self.points)

    def measure(self, kind: str, params: dict[str, Any], replicates: int) -> Any:
        from repro.analysis.sweep import placeholder_point

        key = point_key(kind, params)
        entry = self.points.setdefault(key, {"kind": kind, "params": dict(params), "replicates": 0})
        entry["replicates"] = max(entry["replicates"], replicates)
        return placeholder_point(kind, params, replicates)


class ReplayContext:
    """Serves precomputed replicate outcomes to a re-run generator.

    Parameters
    ----------
    outcomes:
        Mapping from point key to the list of replicate outcome payloads
        (dicts produced by ``ReplicateOutcome.to_dict``), ordered by
        replicate index.
    """

    def __init__(self, outcomes: dict[str, list[dict[str, Any]]]) -> None:
        self._outcomes = outcomes
        self.served = 0

    def measure(self, kind: str, params: dict[str, Any], replicates: int) -> Any:
        from repro.analysis.sweep import ReplicateOutcome, assemble_point

        key = point_key(kind, params)
        payloads = self._outcomes.get(key)
        if payloads is None or len(payloads) < replicates:
            have = 0 if payloads is None else len(payloads)
            raise ParallelExecutionError(
                f"replay is missing outcomes for {key}: need {replicates}, have {have}"
            )
        self.served += 1
        outcomes = [ReplicateOutcome.from_dict(p) for p in payloads[:replicates]]
        return assemble_point(kind, params, outcomes)
