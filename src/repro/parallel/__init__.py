"""Parallel experiment execution with crash-safe resume.

This package fans the paper's evaluation grid out across worker processes
while keeping results *bit-identical* to the serial path:

* every replicate derives its random stream from
  :class:`repro.rng.RngFactory` child streams keyed only on ``(seed,
  replicate)``, never on execution order, so scheduling cannot change a
  single drawn number;
* a crash-safe JSONL :class:`~repro.parallel.journal.Journal` records every
  completed measurement (atomic append + fsync), so an interrupted sweep
  resumes without recomputing finished cells;
* a content-addressed :class:`~repro.parallel.cache.ResultCache` keyed on
  the measurement parameters, seed, and a fingerprint of the code-relevant
  modules lets repeated sweeps compute only missing cells.

The entry point is :class:`~repro.parallel.runner.ExperimentRunner` (or the
:func:`~repro.parallel.runner.run_experiments` convenience wrapper), wired
into the CLI as ``repro experiments --jobs N --resume --cache-dir ...``.
"""

from repro.parallel.cache import ResultCache
from repro.parallel.context import (
    MeasurementContext,
    RecordingContext,
    ReplayContext,
    active_context,
    use_context,
)
from repro.parallel.journal import Journal, JournalState
from repro.parallel.progress import LiveStatusReporter, ProgressReporter, TimingStats
from repro.parallel.runner import (
    ExperimentRunner,
    RunnerReport,
    TaskFailure,
    run_experiments,
)
from repro.parallel.tasks import TaskSpec, discover_experiment, execute_task

__all__ = [
    "ExperimentRunner",
    "RunnerReport",
    "TaskFailure",
    "run_experiments",
    "Journal",
    "JournalState",
    "ResultCache",
    "TaskSpec",
    "execute_task",
    "discover_experiment",
    "MeasurementContext",
    "RecordingContext",
    "ReplayContext",
    "active_context",
    "use_context",
    "ProgressReporter",
    "LiveStatusReporter",
    "TimingStats",
]
