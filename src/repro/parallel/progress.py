"""Progress/ETA reporting, live status, and per-task timing statistics."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, TextIO

__all__ = ["ProgressReporter", "LiveStatusReporter", "TimingStats", "stream_is_tty"]


def stream_is_tty(stream: Any) -> bool:
    """True when ``stream`` is an interactive terminal.

    Carriage-return in-place updates only make sense on a TTY; in CI logs
    and redirected files each ``\\r`` frame becomes a separate junk line,
    so non-TTY streams get plain newline output instead.
    """
    isatty = getattr(stream, "isatty", None)
    if isatty is None:
        return False
    try:
        return bool(isatty())
    except (ValueError, OSError):  # closed or pseudo-file streams
        return False


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass
class TimingStats:
    """Streaming timing accumulator, overall and per explicit group.

    Callers pass the group a task belongs to via ``add(..., group=...)``
    — e.g. the task kind (``capped``/``greedy``) or phase (``discover``).
    When omitted, the full label is its own group. (Earlier versions
    silently grouped by ``label.split()[0]``, which conflated every label
    sharing a first token; grouping is now an explicit caller decision.)
    """

    count: int = 0
    total: float = 0.0
    slowest: float = 0.0
    slowest_label: str = ""
    by_group: dict[str, list[float]] = field(default_factory=dict)

    def add(self, label: str, elapsed: float, group: str | None = None) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.slowest:
            self.slowest = elapsed
            self.slowest_label = label
        self.by_group.setdefault(group if group is not None else label, []).append(elapsed)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary_lines(self) -> list[str]:
        """Human-readable timing breakdown (one line per group)."""
        lines = [
            f"tasks timed: {self.count}  total {self.total:.2f}s  "
            f"mean {self.mean:.2f}s  slowest {self.slowest:.2f}s ({self.slowest_label})"
        ]
        for group in sorted(self.by_group):
            values = sorted(self.by_group[group])
            lines.append(
                f"  {group:10s} count={len(values)} total={sum(values):.2f}s "
                f"mean={sum(values) / len(values):.2f}s "
                f"p50={_quantile(values, 0.5):.2f}s "
                f"p95={_quantile(values, 0.95):.2f}s "
                f"p99={_quantile(values, 0.99):.2f}s max={values[-1]:.2f}s"
            )
        return lines


class ProgressReporter:
    """Prints ``[done/total]`` lines with a simple throughput-based ETA.

    ETA assumes the remaining tasks cost the mean of the *computed* tasks
    so far divided over ``jobs`` workers; cached/journaled tasks count as
    free. On a TTY the report is a single in-place ``\\r`` status line
    (finished with a newline); on non-TTY streams (CI logs, files) each
    update is a plain newline-terminated line. Output is throttled to at
    most one update per ``min_interval`` seconds (the final task always
    prints).
    """

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: TextIO | None = None,
        min_interval: float = 0.5,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.use_tty = stream_is_tty(self.stream)
        self.done = 0
        self.computed = 0
        self.computed_seconds = 0.0
        self._last_print = 0.0
        self._line_width = 0

    def task_done(self, label: str, elapsed: float, source: str = "computed", **info: Any) -> None:
        """Record one finished task; ``source`` is computed/cache/journal.

        Extra keyword info (worker ``pid``, the task ``outcome``/``kind``/
        ``params``) is accepted and ignored here; richer reporters
        (:class:`LiveStatusReporter`) consume it.
        """
        self.done += 1
        if source in ("computed", "remote"):
            self.computed += 1
            self.computed_seconds += elapsed
        now = time.monotonic()
        is_last = self.done >= self.total
        if not is_last and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        eta = ""
        if self.computed and not is_last:
            per_task = self.computed_seconds / self.computed
            remaining = (self.total - self.done) * per_task / self.jobs
            eta = f"  eta {remaining:.0f}s"
        self._write_line(
            f"[{self.done}/{self.total}] {label} ({source}, {elapsed:.2f}s){eta}",
            final=is_last,
        )

    def note_fleet_event(self, event: dict[str, Any]) -> None:
        """Record a broker fleet event (worker churn, re-lease, retry).

        The base reporter ignores them; :class:`LiveStatusReporter`
        aggregates them into the fleet-wide status line.
        """

    def _write_line(self, text: str, final: bool) -> None:
        if self.use_tty:
            # Overwrite the previous frame in place; pad so a shorter
            # frame fully covers a longer one.
            padding = " " * max(0, self._line_width - len(text))
            self._line_width = len(text)
            self.stream.write("\r" + text + padding)
            if final:
                self.stream.write("\n")
                self._line_width = 0
        else:
            self.stream.write(text + "\n")
        self.stream.flush()


class LiveStatusReporter(ProgressReporter):
    """Progress plus a live run dashboard (``--live-status``).

    Each update line adds, beyond ``[done/total]`` + ETA:

    * per-worker throughput — tasks completed by each worker pid;
    * retry / quarantine counts, read live from the runner's report;
    * the running pool-size-vs-theory error — mean relative deviation of
      each computed capped outcome's ``normalized_pool`` from the
      mean-field equilibrium prediction for its ``(c, lam)``.

    The reporter only *reads* outcomes the runner already computed, so it
    can never perturb results.
    """

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: TextIO | None = None,
        min_interval: float = 0.5,
        report: Any = None,
    ) -> None:
        super().__init__(total=total, jobs=jobs, stream=stream, min_interval=min_interval)
        self.report = report  # duck-typed RunnerReport (tasks_retried etc.)
        # Keys are local pool pids (int) or remote worker ids (str); the
        # two never mix within one run, so sorting stays well-defined.
        self.worker_tasks: dict[int | str, int] = {}
        self.fleet_workers: set[str] = set()
        self.fleet_releases = 0
        self.fleet_retries = 0
        # Latest broker-aggregated quantile digest (fleet-stats events).
        self.fleet_stats: dict[str, Any] = {}
        self.theory_errors: list[float] = []
        self._theory_pool: dict[tuple[int, float], float | None] = {}
        self._started = time.monotonic()

    def _theory_pool_for(self, c: int, lam: float) -> float | None:
        """Mean-field equilibrium pool for ``(c, lam)``, memoised per cell."""
        key = (c, lam)
        if key not in self._theory_pool:
            try:
                from repro.core.meanfield import equilibrium

                self._theory_pool[key] = float(equilibrium(c, lam).normalized_pool)
            except Exception:
                self._theory_pool[key] = None  # solver rejects the cell; skip it
        return self._theory_pool[key]

    def _note_outcome(self, info: dict[str, Any]) -> None:
        worker = info.get("worker")
        if worker is not None:
            # A completion proves the worker is live even if it joined the
            # fleet before this client connected (no join event seen).
            self.fleet_workers.add(str(worker))
        key: int | str | None = str(worker) if worker is not None else info.get("pid")
        if key is not None:
            self.worker_tasks[key] = self.worker_tasks.get(key, 0) + 1
        if info.get("kind") != "capped":
            return
        outcome = info.get("outcome") or {}
        params = info.get("params") or {}
        c, lam = params.get("c"), params.get("lam")
        pool = outcome.get("normalized_pool")
        if pool is None or c is None or lam is None or not (0 <= lam < 1) or c < 1:
            return
        theory = self._theory_pool_for(int(c), float(lam))
        if theory is not None and theory > 0:
            self.theory_errors.append(abs(pool / theory - 1.0))

    def task_done(self, label: str, elapsed: float, source: str = "computed", **info: Any) -> None:
        if source in ("computed", "remote"):
            self._note_outcome(info)
        super().task_done(label, elapsed, source, **info)

    def note_fleet_event(self, event: dict[str, Any]) -> None:
        """Aggregate a broker-forwarded fleet event into the status line."""
        kind = event.get("kind")
        worker = event.get("worker")
        if kind == "worker-join" and worker:
            self.fleet_workers.add(str(worker))
        elif kind == "worker-leave" and worker:
            self.fleet_workers.discard(str(worker))
        elif kind == "re-lease":
            self.fleet_releases += 1
        elif kind == "retry":
            self.fleet_retries += 1
        elif kind == "fleet-stats":
            # Broker-side digest of fleet task latency and queue depth;
            # last write wins (each event supersedes the previous one).
            self.fleet_stats = {
                k: v for k, v in event.items() if k not in ("type", "kind")
            }

    def _write_line(self, text: str, final: bool) -> None:
        extras = []
        if self.worker_tasks:
            rate = self.computed / max(1e-9, time.monotonic() - self._started)
            ordered = sorted(self.worker_tasks.items(), key=lambda kv: str(kv[0]))
            counts = "/".join(str(count) for _, count in ordered)
            extras.append(f"workers {len(self.worker_tasks)} ({counts})  {rate:.2f} task/s")
        if self.fleet_workers or self.fleet_releases:
            extras.append(f"fleet {len(self.fleet_workers)} live  re-leases {self.fleet_releases}")
        if self.fleet_stats:
            quantiles = "/".join(
                f"{self.fleet_stats[key]:.2f}s"
                for key in ("p50", "p95", "p99")
                if isinstance(self.fleet_stats.get(key), (int, float))
            )
            depth = self.fleet_stats.get("queue_depth")
            parts = [f"q {depth}" if depth is not None else "", quantiles]
            summary = "  ".join(p for p in parts if p)
            if summary:
                extras.append(f"fleet-lat {summary}")
        if self.report is not None:
            extras.append(
                f"retries {getattr(self.report, 'tasks_retried', 0)}  "
                f"quarantined {getattr(self.report, 'tasks_quarantined', 0)}"
            )
        if self.theory_errors:
            mean_err = sum(self.theory_errors) / len(self.theory_errors)
            extras.append(f"pool err {mean_err * 100:.1f}%")
        if extras:
            text = text + "  |  " + "  ".join(extras)
        super()._write_line(text, final)
