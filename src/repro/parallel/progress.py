"""Progress/ETA reporting and per-task timing statistics."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TextIO

__all__ = ["ProgressReporter", "TimingStats"]


@dataclass
class TimingStats:
    """Streaming timing accumulator, overall and per label prefix."""

    count: int = 0
    total: float = 0.0
    slowest: float = 0.0
    slowest_label: str = ""
    by_label: dict[str, list[float]] = field(default_factory=dict)

    def add(self, label: str, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.slowest:
            self.slowest = elapsed
            self.slowest_label = label
        bucket = self.by_label.setdefault(label.split()[0], [])
        bucket.append(elapsed)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary_lines(self) -> list[str]:
        """Human-readable timing breakdown (one line per label prefix)."""
        lines = [
            f"tasks timed: {self.count}  total {self.total:.2f}s  "
            f"mean {self.mean:.2f}s  slowest {self.slowest:.2f}s ({self.slowest_label})"
        ]
        for label in sorted(self.by_label):
            values = self.by_label[label]
            lines.append(
                f"  {label:10s} count={len(values)} total={sum(values):.2f}s "
                f"mean={sum(values) / len(values):.2f}s max={max(values):.2f}s"
            )
        return lines


class ProgressReporter:
    """Prints ``[done/total]`` lines with a simple throughput-based ETA.

    ETA assumes the remaining tasks cost the mean of the *computed* tasks
    so far divided over ``jobs`` workers; cached/journaled tasks count as
    free. Output is throttled to at most one line per ``min_interval``
    seconds (the final task always prints).
    """

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        stream: TextIO | None = None,
        min_interval: float = 0.5,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.computed = 0
        self.computed_seconds = 0.0
        self._last_print = 0.0

    def task_done(self, label: str, elapsed: float, source: str = "computed") -> None:
        """Record one finished task; ``source`` is computed/cache/journal."""
        self.done += 1
        if source == "computed":
            self.computed += 1
            self.computed_seconds += elapsed
        now = time.monotonic()
        is_last = self.done >= self.total
        if not is_last and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        eta = ""
        if self.computed and not is_last:
            per_task = self.computed_seconds / self.computed
            remaining = (self.total - self.done) * per_task / self.jobs
            eta = f"  eta {remaining:.0f}s"
        self.stream.write(
            f"[{self.done}/{self.total}] {label} ({source}, {elapsed:.2f}s){eta}\n"
        )
        self.stream.flush()
