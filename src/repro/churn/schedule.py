"""Declarative churn schedules: dynamic bin/server membership over time.

A :class:`ChurnSchedule` is the membership counterpart of
:class:`~repro.faults.schedule.FaultSchedule`: an immutable description of
*who joins and leaves when*, plus a seed for every stochastic choice (which
bins leave, how many Poisson arrivals/departures fire). Like fault
schedules, churn schedules carry no simulator state and draw all randomness
from their own seed through a dedicated RNG stream
(``RngFactory(seed).generator("churn")``) — never from the simulated
process's RNG — so attaching churn does not perturb the arrival/placement
randomness and a (schedule, process-seed) pair fully determines a run.

Timing convention matches faults: an event with ``at_round = t`` is applied
at the *end* of round ``t`` (observers fire after the round completes), so
the new membership is first visible in round ``t + 1``.

Leave policies (see :meth:`repro.balls.bin_array.BinArray.shrink`):

``rehash``
    Queued balls on removed bins re-enter the pool (labelled with the
    current round) and are re-thrown next round.
``drop``
    Queued balls are destroyed (counted by the injector).
``drain``
    Two-stage removal: the bins are *sealed* first (no new acceptance,
    FIFO service continues) and removed only once empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.balls.bin_array import SHRINK_POLICIES
from repro.errors import ConfigurationError

__all__ = [
    "JoinBurst",
    "LeaveBurst",
    "Flapping",
    "PoissonChurn",
    "Ramp",
    "ChurnEvent",
    "ChurnSchedule",
]


def _check_at_round(at_round: int) -> None:
    if at_round < 1:
        raise ConfigurationError(f"at_round must be >= 1, got {at_round}")


def _check_policy(policy: str) -> None:
    if policy not in SHRINK_POLICIES:
        raise ConfigurationError(f"policy must be one of {SHRINK_POLICIES}, got {policy!r}")


@dataclass(frozen=True)
class JoinBurst:
    """``count`` fresh empty bins join at the end of ``at_round``.

    ``capacity=None`` inherits the pool's capacity (scalar c, or the max of
    a per-bin capacity array); an explicit value gives the joiners their
    own buffer size.
    """

    at_round: int
    count: int
    capacity: int | None = None

    def __post_init__(self) -> None:
        _check_at_round(self.at_round)
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")


@dataclass(frozen=True)
class LeaveBurst:
    """A random ``fraction`` of live bins leaves at the end of ``at_round``.

    Exactly one of ``fraction`` and ``count`` must be given. The victims
    are chosen uniformly from the *current* membership by the schedule's
    RNG stream. ``policy`` decides the fate of their queued balls; with
    ``drain`` the victims are sealed at ``at_round`` and removed once their
    queues empty (at most ``c`` rounds later).
    """

    at_round: int
    fraction: float | None = None
    count: int | None = None
    policy: str = "rehash"

    def __post_init__(self) -> None:
        _check_at_round(self.at_round)
        if (self.fraction is None) == (self.count is None):
            raise ConfigurationError("give exactly one of fraction or count")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.count is not None and self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        _check_policy(self.policy)


@dataclass(frozen=True)
class Flapping:
    """Nodes that repeatedly leave and rejoin (an unstable rack).

    Every ``period`` rounds starting at ``first_round``, ``count`` random
    bins leave (with ``policy``); ``count`` replacements join
    ``down_rounds`` later. Membership oscillates by ``count`` with period
    ``period``. ``last_round`` bounds the flapping window (``None`` = the
    whole run); departures after ``last_round`` do not fire, but a rejoin
    scheduled before it still lands.
    """

    first_round: int
    period: int
    down_rounds: int
    count: int = 1
    policy: str = "rehash"
    last_round: int | None = None

    def __post_init__(self) -> None:
        if self.first_round < 1:
            raise ConfigurationError(f"first_round must be >= 1, got {self.first_round}")
        if self.period < 2:
            raise ConfigurationError(f"period must be >= 2, got {self.period}")
        if not 1 <= self.down_rounds < self.period:
            raise ConfigurationError(
                f"down_rounds must be in [1, period), got {self.down_rounds} "
                f"with period {self.period}"
            )
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        _check_policy(self.policy)
        if self.last_round is not None and self.last_round < self.first_round:
            raise ConfigurationError(
                f"last_round {self.last_round} precedes first_round {self.first_round}"
            )


@dataclass(frozen=True)
class PoissonChurn:
    """Memoryless membership churn: each round in ``[first_round,
    last_round]``, ``Poisson(join_rate)`` bins join and ``Poisson(leave_rate)``
    random bins leave. Equal rates give a membership random walk around the
    starting n (clamped by the schedule's ``min_n``/``max_n``).
    """

    join_rate: float
    leave_rate: float
    first_round: int = 1
    last_round: int | None = None
    policy: str = "rehash"

    def __post_init__(self) -> None:
        if self.join_rate < 0.0 or self.leave_rate < 0.0:
            raise ConfigurationError(
                f"rates must be non-negative, got join={self.join_rate} leave={self.leave_rate}"
            )
        if self.join_rate == 0.0 and self.leave_rate == 0.0:
            raise ConfigurationError("at least one of join_rate/leave_rate must be positive")
        if self.first_round < 1:
            raise ConfigurationError(f"first_round must be >= 1, got {self.first_round}")
        if self.last_round is not None and self.last_round < self.first_round:
            raise ConfigurationError(
                f"last_round {self.last_round} precedes first_round {self.first_round}"
            )
        _check_policy(self.policy)


@dataclass(frozen=True)
class Ramp:
    """Linear membership ramp: from the live n at ``start_round`` to
    ``target_n`` at ``end_round``, adjusting every round along the way
    (a planned scale-up or blue/green drain-down).
    """

    start_round: int
    end_round: int
    target_n: int
    policy: str = "rehash"

    def __post_init__(self) -> None:
        if self.start_round < 1:
            raise ConfigurationError(f"start_round must be >= 1, got {self.start_round}")
        if self.end_round <= self.start_round:
            raise ConfigurationError(
                f"end_round {self.end_round} must be > start_round {self.start_round}"
            )
        if self.target_n < 1:
            raise ConfigurationError(f"target_n must be >= 1, got {self.target_n}")
        _check_policy(self.policy)


ChurnEvent = Union[JoinBurst, LeaveBurst, Flapping, PoissonChurn, Ramp]

_EVENT_TYPES = (JoinBurst, LeaveBurst, Flapping, PoissonChurn, Ramp)


@dataclass(frozen=True)
class ChurnSchedule:
    """An immutable list of churn events plus the injector seed and bounds.

    ``min_n``/``max_n`` clamp every membership change (schedule-driven and
    autoscaler-driven alike use their own bounds): a leave event that would
    push n below ``min_n`` is truncated, a join above ``max_n`` likewise.
    """

    events: tuple = field(default_factory=tuple)
    seed: int = 0
    min_n: int = 1
    max_n: int | None = None

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, _EVENT_TYPES):
                raise ConfigurationError(f"unknown churn event type: {type(event).__name__}")
        object.__setattr__(self, "events", events)
        if self.min_n < 1:
            raise ConfigurationError(f"min_n must be >= 1, got {self.min_n}")
        if self.max_n is not None and self.max_n < self.min_n:
            raise ConfigurationError(f"max_n {self.max_n} below min_n {self.min_n}")

    def __bool__(self) -> bool:
        return bool(self.events)
