"""Dynamic membership: churn schedules, injection, autoscaling, scenarios.

The churn subsystem lets bins/servers join and leave *mid-run* — the
regime studied by the dynamic balls-into-bins line of work — while keeping
every repro guarantee intact: determinism under a dedicated RNG substream,
bit-identical checkpoint/resume through membership changes, and zero
perturbation of static runs (an empty schedule is a no-op observer).

See ``docs/churn.md`` for the membership model, re-hash policies, the
RNG-stream contract, and the autoscaler knobs.
"""

from repro.churn.autoscale import Autoscaler, AutoscalingPolicy
from repro.churn.injector import ChurnInjector, removal_mapping
from repro.churn.schedule import (
    ChurnEvent,
    ChurnSchedule,
    Flapping,
    JoinBurst,
    LeaveBurst,
    PoissonChurn,
    Ramp,
)
from repro.churn.scenario import ChaosScenario, scenario_from_dict, scenario_from_json

__all__ = [
    "Autoscaler",
    "AutoscalingPolicy",
    "ChaosScenario",
    "ChurnEvent",
    "ChurnInjector",
    "ChurnSchedule",
    "Flapping",
    "JoinBurst",
    "LeaveBurst",
    "PoissonChurn",
    "Ramp",
    "removal_mapping",
    "scenario_from_dict",
    "scenario_from_json",
]
