"""The churn injector: applies a :class:`~repro.churn.schedule.ChurnSchedule`
to a live simulator through the observer pipeline.

Like :class:`~repro.faults.FaultInjector`, the injector implements the
engine's ``on_round(record, process)`` observer protocol, binds lazily to
either a ball process (anything exposing ``grow_bins``/``shrink_bins``) or a
:class:`~repro.cluster.farm.ServerFarm`, and draws every stochastic choice
(leave victims, Poisson counts) from a dedicated RNG stream
(``RngFactory(seed).generator("churn")``) so the simulated process's own
randomness is untouched.

Index remapping
---------------
Removing bins *compacts* indices: bin ``j > i`` becomes ``j - 1`` when bin
``i`` leaves. Any observer holding per-entity bookkeeping (a FaultInjector's
down map, this injector's own pending-drain groups) goes stale at that
moment. Mutating observers therefore maintain a listener list: after every
shrink they build the old→new index mapping (``-1`` = removed) and call
``remap_entities(mapping)`` on each registered listener.
:meth:`repro.churn.scenario.ChaosScenario.build_observers` wires this
automatically; wire it by hand when composing injectors yourself.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.churn.schedule import (
    ChurnSchedule,
    Flapping,
    JoinBurst,
    LeaveBurst,
    PoissonChurn,
    Ramp,
)
from repro.errors import ConfigurationError
from repro.rng import RngFactory
from repro.telemetry.runtime import current as _telemetry_current

__all__ = ["ChurnInjector", "removal_mapping"]


def removal_mapping(old_n: int, removed: np.ndarray) -> np.ndarray:
    """Old→new index mapping after removing ``removed`` from ``old_n`` entities.

    ``mapping[i]`` is the post-compaction index of old entity ``i``, or
    ``-1`` if it was removed. Pass this to ``remap_entities`` on every
    observer holding per-entity state.
    """
    mapping = np.full(old_n, -1, dtype=np.int64)
    keep = np.ones(old_n, dtype=bool)
    keep[removed] = False
    mapping[keep] = np.arange(old_n - len(removed), dtype=np.int64)
    return mapping


class _BallChurnAdapter:
    """Resizes a CAPPED-style process (``grow_bins``/``shrink_bins``)."""

    def __init__(self, process: Any) -> None:
        self.process = process

    @property
    def n(self) -> int:
        return self.process.bins.n

    def draining_mask(self) -> np.ndarray:
        return self.process.bins.draining

    def loads_of(self, indices: np.ndarray) -> np.ndarray:
        return self.process.bins.loads[indices]

    def join(self, count: int, capacity=None) -> np.ndarray:
        return self.process.grow_bins(count, capacity=capacity)

    def leave(self, indices: np.ndarray, policy: str) -> int:
        return self.process.shrink_bins(indices, policy=policy)

    def seal(self, indices: np.ndarray) -> None:
        self.process.seal_bins(indices)

    def capacity_scalar(self) -> int | None:
        """Shared scalar capacity, or None when unbounded/heterogeneous."""
        capacity = self.process.bins.capacity
        return capacity if isinstance(capacity, int) else None

    def capacity_total(self) -> int | None:
        """Total buffer slots across the pool (None when unbounded)."""
        capacity = self.process.bins.capacity
        if capacity is None:
            return None
        if isinstance(capacity, int):
            return capacity * self.n
        return int(np.asarray(capacity).sum())

    def set_capacity_all(self, value: int) -> None:
        self.process.bins.set_capacity(value)


class _FarmChurnAdapter:
    """Resizes a :class:`~repro.cluster.farm.ServerFarm`."""

    def __init__(self, process: Any) -> None:
        self.farm = process

    @property
    def n(self) -> int:
        return self.farm.num_servers

    def draining_mask(self) -> np.ndarray:
        return np.asarray([s.sealed for s in self.farm.servers], dtype=bool)

    def loads_of(self, indices: np.ndarray) -> np.ndarray:
        return np.asarray(
            [self.farm.servers[int(i)].queue_length for i in indices], dtype=np.int64
        )

    def join(self, count: int, capacity=None) -> np.ndarray:
        return self.farm.add_servers(count, capacity=capacity)

    def leave(self, indices: np.ndarray, policy: str) -> int:
        return self.farm.remove_servers(indices, policy=policy)

    def seal(self, indices: np.ndarray) -> None:
        self.farm.seal_servers(indices)

    def capacity_scalar(self) -> int | None:
        capacities = {s.capacity for s in self.farm.servers}
        if len(capacities) == 1:
            only = capacities.pop()
            return only if isinstance(only, int) else None
        return None

    def capacity_total(self) -> int | None:
        total = 0
        for server in self.farm.servers:
            if server.capacity is None:
                return None
            total += server.capacity
        return total

    def set_capacity_all(self, value: int) -> None:
        for server in self.farm.servers:
            server.set_capacity(value)


def bind_membership_adapter(process: Any):
    """Adapter for whichever membership surface ``process`` exposes."""
    if hasattr(process, "grow_bins") and hasattr(process, "shrink_bins"):
        return _BallChurnAdapter(process)
    if hasattr(process, "add_servers") and hasattr(process, "remove_servers"):
        return _FarmChurnAdapter(process)
    raise ConfigurationError(
        f"don't know how to churn {type(process).__name__}: expected a ball "
        "process (grow_bins/shrink_bins) or a server farm (add_servers/remove_servers)"
    )


class _MembershipMutator:
    """Shared listener plumbing for observers that resize the entity set."""

    def __init__(self) -> None:
        self._remap_listeners: list[Any] = []

    def add_remap_listener(self, listener: Any) -> None:
        """Register an observer to notify (``remap_entities``) after shrinks."""
        if listener is self:
            raise ConfigurationError("an observer cannot be its own remap listener")
        if listener not in self._remap_listeners:
            self._remap_listeners.append(listener)

    def _broadcast_remap(self, mapping: np.ndarray) -> None:
        for listener in self._remap_listeners:
            listener.remap_entities(mapping)


class ChurnInjector(_MembershipMutator):
    """Observer that applies a churn schedule to the observed process.

    Attach it to a driver or farm alongside (before) any
    :class:`~repro.faults.FaultInjector`; see
    :class:`~repro.churn.scenario.ChaosScenario` for the standard wiring.

    Attributes
    ----------
    joins / leaves:
        Entities added and removed so far.
    balls_rehashed / balls_dropped:
        Displaced queue contents re-pooled (``rehash``) or destroyed
        (``drop``) by leave events.
    events_log:
        ``(round, description)`` tuples for every applied action.
    """

    def __init__(self, schedule: ChurnSchedule) -> None:
        super().__init__()
        if not isinstance(schedule, ChurnSchedule):
            raise ConfigurationError(
                f"schedule must be a ChurnSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self._rng = RngFactory(schedule.seed).generator("churn")
        self._adapter = None
        self._process = None
        # Sealed bins awaiting empty queues, one array per drain-policy
        # leave event (current index space; remapped on every shrink).
        self._pending_drain: list[np.ndarray] = []
        # Flapping rejoins not yet landed: (rejoin_round, count).
        self._rejoins: list[tuple[int, int]] = []
        # Ramp events key their base membership by position in the events
        # tuple, captured the round the ramp starts.
        self._ramp_base: dict[int, int] = {}
        self.joins = 0
        self.leaves = 0
        self.balls_rehashed = 0
        self.balls_dropped = 0
        self.events_log: list[tuple[int, str]] = []

    def _bind(self, process: Any):
        if self._adapter is not None:
            if process is not self._process:
                raise ConfigurationError(
                    "a ChurnInjector is bound to one process; build one per run"
                )
            return self._adapter
        self._adapter = bind_membership_adapter(process)
        self._process = process
        return self._adapter

    def _note(self, t: int, description: str, action: str) -> None:
        self.events_log.append((t, description))
        tel = _telemetry_current()
        if tel is not None:
            tel.inc("churn_events_total", action=action)
            tel.emit({"type": "churn", "round": t, "action": action, "description": description})

    # -- membership state shared with other observers -----------------------

    def remap_entities(self, mapping: np.ndarray) -> None:
        """Rewrite pending-drain groups after someone else shrank the pool."""
        mapping = np.asarray(mapping, dtype=np.int64)
        remapped = []
        for group in self._pending_drain:
            new = mapping[group]
            new = new[new >= 0]
            if new.size:
                remapped.append(new)
        self._pending_drain = remapped

    # -- clamps against schedule bounds -------------------------------------

    def _clamp_join(self, n: int, count: int) -> int:
        if self.schedule.max_n is not None:
            count = min(count, self.schedule.max_n - n)
        return max(count, 0)

    def _clamp_leave(self, n: int, count: int) -> int:
        # Bins already draining are committed departures: budget them
        # against min_n too so a drain plus a follow-up leave cannot
        # jointly undershoot the floor.
        committed = int(sum(group.size for group in self._pending_drain))
        return max(0, min(count, n - committed - self.schedule.min_n))

    # -- primitive membership changes ---------------------------------------

    def _join(self, adapter, t: int, count: int, capacity, reason: str) -> None:
        count = self._clamp_join(adapter.n, count)
        if count <= 0:
            return
        adapter.join(count, capacity=capacity)
        self.joins += count
        self._note(t, f"join {count} ({reason}) -> n={adapter.n}", "join")
        tel = _telemetry_current()
        if tel is not None:
            tel.set_gauge("membership_n", adapter.n)

    def _pick_victims(self, adapter, count: int) -> np.ndarray:
        """Uniform victims among bins not already committed to draining."""
        eligible = np.flatnonzero(~adapter.draining_mask())
        count = min(count, eligible.size)
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._rng.choice(eligible, size=count, replace=False))

    def _leave(self, adapter, t: int, indices: np.ndarray, policy: str, reason: str) -> None:
        if indices.size == 0:
            return
        if policy == "drain":
            adapter.seal(indices)
            self._pending_drain.append(np.asarray(indices, dtype=np.int64))
            self._note(t, f"seal {indices.size} for drain ({reason})", "seal")
            return
        old_n = adapter.n
        displaced = adapter.leave(indices, policy)
        self._broadcast_and_remap(removal_mapping(old_n, indices))
        self.leaves += int(indices.size)
        if policy == "rehash":
            self.balls_rehashed += displaced
        else:
            self.balls_dropped += displaced
        self._note(
            t,
            f"leave {indices.size} ({policy}, displaced {displaced}, {reason}) -> n={adapter.n}",
            "leave",
        )
        tel = _telemetry_current()
        if tel is not None:
            tel.set_gauge("membership_n", adapter.n)
            if policy == "rehash" and displaced:
                tel.inc("balls_rehashed_total", displaced)

    def _broadcast_and_remap(self, mapping: np.ndarray) -> None:
        """Fix our own index bookkeeping, then every registered listener's."""
        self.remap_entities(mapping)
        self._broadcast_remap(mapping)

    def _finish_drains(self, adapter, t: int) -> None:
        """Remove sealed bins whose queues have emptied.

        Drain groups are disjoint (victims are never picked among already-
        draining bins), so every empty sealed bin across all groups leaves
        in one compaction and one remap broadcast.
        """
        still_pending: list[np.ndarray] = []
        ready_parts: list[np.ndarray] = []
        for group in self._pending_drain:
            empty = adapter.loads_of(group) == 0
            if empty.any():
                ready_parts.append(group[empty])
            if not empty.all():
                still_pending.append(group[~empty])
        if not ready_parts:
            return
        self._pending_drain = still_pending
        ready = np.sort(np.concatenate(ready_parts))
        old_n = adapter.n
        adapter.leave(ready, "drain")
        self._broadcast_and_remap(removal_mapping(old_n, ready))
        self.leaves += int(ready.size)
        self._note(t, f"drain complete for {ready.size} -> n={adapter.n}", "leave")
        tel = _telemetry_current()
        if tel is not None:
            tel.set_gauge("membership_n", adapter.n)

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> dict:
        """Checkpoint the injector's mid-schedule position.

        The schedule is immutable configuration; the mutable state is the
        churn RNG stream, pending drains/rejoins, ramp bases, counters, and
        the log. Restored alongside the process state, a resumed run applies
        the exact same remaining churn as an uninterrupted one.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "pending_drain": [group.tolist() for group in self._pending_drain],
            "rejoins": [[t, count] for t, count in self._rejoins],
            "ramp_base": [[index, base] for index, base in sorted(self._ramp_base.items())],
            "joins": self.joins,
            "leaves": self.leaves,
            "balls_rehashed": self.balls_rehashed,
            "balls_dropped": self.balls_dropped,
            "events_log": [[t, description] for t, description in self.events_log],
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (binding stays lazy)."""
        self._rng.bit_generator.state = state["rng"]
        self._pending_drain = [
            np.asarray(group, dtype=np.int64) for group in state["pending_drain"]
        ]
        self._rejoins = [(int(t), int(count)) for t, count in state["rejoins"]]
        self._ramp_base = {int(index): int(base) for index, base in state["ramp_base"]}
        self.joins = int(state["joins"])
        self.leaves = int(state["leaves"])
        self.balls_rehashed = int(state["balls_rehashed"])
        self.balls_dropped = int(state["balls_dropped"])
        self.events_log = [(int(t), str(description)) for t, description in state["events_log"]]

    # -- the observer hook --------------------------------------------------

    def on_round(self, record, process: Any) -> None:
        adapter = self._bind(process)
        t = record.round

        # 1. Flapping rejoins landing now.
        due = [count for rejoin_round, count in self._rejoins if rejoin_round == t]
        if due:
            self._rejoins = [r for r in self._rejoins if r[0] != t]
            for count in due:
                self._join(adapter, t, count, None, "flap rejoin")

        # 2. Sealed bins whose queues emptied leave now.
        if self._pending_drain:
            self._finish_drains(adapter, t)

        # 3. Scheduled events firing now.
        for event_index, event in enumerate(self.schedule.events):
            if isinstance(event, JoinBurst):
                if event.at_round == t:
                    self._join(adapter, t, event.count, event.capacity, "join burst")
            elif isinstance(event, LeaveBurst):
                if event.at_round == t:
                    want = (
                        event.count
                        if event.count is not None
                        else max(1, round(event.fraction * adapter.n))
                    )
                    count = self._clamp_leave(adapter.n, want)
                    victims = self._pick_victims(adapter, count)
                    self._leave(adapter, t, victims, event.policy, "leave burst")
            elif isinstance(event, Flapping):
                last = event.last_round
                if (
                    t >= event.first_round
                    and (last is None or t <= last)
                    and (t - event.first_round) % event.period == 0
                ):
                    count = self._clamp_leave(adapter.n, event.count)
                    victims = self._pick_victims(adapter, count)
                    if victims.size:
                        self._leave(adapter, t, victims, event.policy, "flap leave")
                        self._rejoins.append((t + event.down_rounds, int(victims.size)))
            elif isinstance(event, PoissonChurn):
                if t >= event.first_round and (
                    event.last_round is None or t <= event.last_round
                ):
                    # Fixed draw order (joins, leaves, victims) keeps the
                    # stream deterministic regardless of clamping.
                    join_count = (
                        int(self._rng.poisson(event.join_rate)) if event.join_rate else 0
                    )
                    leave_count = (
                        int(self._rng.poisson(event.leave_rate)) if event.leave_rate else 0
                    )
                    if join_count:
                        self._join(adapter, t, join_count, None, "poisson")
                    if leave_count:
                        count = self._clamp_leave(adapter.n, leave_count)
                        victims = self._pick_victims(adapter, count)
                        self._leave(adapter, t, victims, event.policy, "poisson")
            elif isinstance(event, Ramp):
                if event.start_round <= t <= event.end_round:
                    base = self._ramp_base.setdefault(event_index, adapter.n)
                    span = event.end_round - event.start_round
                    desired = round(
                        base + (event.target_n - base) * (t - event.start_round) / span
                    )
                    delta = int(desired) - adapter.n
                    if delta > 0:
                        self._join(adapter, t, delta, None, "ramp")
                    elif delta < 0:
                        count = self._clamp_leave(adapter.n, -delta)
                        victims = self._pick_victims(adapter, count)
                        self._leave(adapter, t, victims, event.policy, "ramp")
