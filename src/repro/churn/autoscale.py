"""Autoscaling: re-pick n (and c) from observed occupancy/wait signals.

:class:`AutoscalingPolicy` is the immutable knob set; :class:`Autoscaler`
is the observer that applies it. Two controllers are provided:

``utilization``
    Signal = ``total_load / total_capacity`` per round. Tracks buffer
    occupancy; requires bounded bins.
``p99_wait``
    Signal = the per-round p99 waiting time (from each record's sparse
    wait histogram; rounds with no finalized waits carry the last value
    forward, matching :func:`repro.faults.recovery.per_round_p99`).
    ``target`` is then measured in rounds.

Decisions happen only at ``check_every`` round boundaries, only with a full
signal window, and only ``cooldown`` rounds after the previous scale event;
each decision moves membership by at most ``max_step`` bins. The window is
cleared after every scale event so post-change signals are never mixed with
pre-change ones. Scale-in victims come from the autoscaler's own RNG stream
(``RngFactory(seed).generator("autoscale")``), never the process RNG.

When a scale-out is wanted but membership is pinned at ``max_n``, the
controller can instead raise a shared scalar capacity by one (up to
``capacity_max``) — the "re-pick c" half of the control surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.balls.bin_array import SHRINK_POLICIES
from repro.churn.injector import (
    _MembershipMutator,
    bind_membership_adapter,
    removal_mapping,
)
from repro.errors import ConfigurationError
from repro.rng import RngFactory
from repro.telemetry.runtime import current as _telemetry_current, span as _span

__all__ = ["AutoscalingPolicy", "Autoscaler"]

CONTROLLERS = ("utilization", "p99_wait")


@dataclass(frozen=True)
class AutoscalingPolicy:
    """Immutable autoscaler configuration (see module docstring)."""

    controller: str = "utilization"
    target: float = 0.7
    band: float = 0.1
    window: int = 25
    check_every: int = 25
    cooldown: int = 50
    max_step: int = 64
    min_n: int = 1
    max_n: int | None = None
    policy: str = "rehash"
    capacity_max: int | None = None

    def __post_init__(self) -> None:
        if self.controller not in CONTROLLERS:
            raise ConfigurationError(
                f"controller must be one of {CONTROLLERS}, got {self.controller!r}"
            )
        if self.target <= 0.0:
            raise ConfigurationError(f"target must be positive, got {self.target}")
        if not 0.0 <= self.band < 1.0:
            raise ConfigurationError(f"band must be in [0, 1), got {self.band}")
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.check_every < 1:
            raise ConfigurationError(f"check_every must be >= 1, got {self.check_every}")
        if self.cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.max_step < 1:
            raise ConfigurationError(f"max_step must be >= 1, got {self.max_step}")
        if self.min_n < 1:
            raise ConfigurationError(f"min_n must be >= 1, got {self.min_n}")
        if self.max_n is not None and self.max_n < self.min_n:
            raise ConfigurationError(f"max_n {self.max_n} below min_n {self.min_n}")
        if self.policy not in SHRINK_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SHRINK_POLICIES}, got {self.policy!r}"
            )
        if self.policy == "drain":
            # Draining needs the two-stage pending bookkeeping the
            # ChurnInjector owns; the autoscaler keeps no such queue.
            raise ConfigurationError("autoscaler scale-in supports 'rehash' or 'drop' only")
        if self.capacity_max is not None and self.capacity_max < 1:
            raise ConfigurationError(f"capacity_max must be >= 1, got {self.capacity_max}")


class Autoscaler(_MembershipMutator):
    """Observer implementing :class:`AutoscalingPolicy` on a live process.

    Attributes
    ----------
    scale_outs / scale_ins / capacity_raises:
        Decisions applied so far, by kind.
    events_log:
        ``(round, description)`` tuples for every decision.
    """

    def __init__(self, policy: AutoscalingPolicy, seed: int = 0) -> None:
        super().__init__()
        if not isinstance(policy, AutoscalingPolicy):
            raise ConfigurationError(
                f"policy must be an AutoscalingPolicy, got {type(policy).__name__}"
            )
        self.policy = policy
        self._rng = RngFactory(seed).generator("autoscale")
        self._adapter = None
        self._process = None
        self._window: list[float] = []
        self._last_signal = 0.0
        self._last_scale_round: int | None = None
        self.scale_outs = 0
        self.scale_ins = 0
        self.capacity_raises = 0
        self.events_log: list[tuple[int, str]] = []

    def _bind(self, process: Any):
        if self._adapter is not None:
            if process is not self._process:
                raise ConfigurationError(
                    "an Autoscaler is bound to one process; build one per run"
                )
            return self._adapter
        adapter = bind_membership_adapter(process)
        if self.policy.controller == "utilization" and adapter.capacity_total() is None:
            raise ConfigurationError(
                "the utilization controller needs bounded capacity "
                "(an unbounded pool cannot report occupancy)"
            )
        self._adapter = adapter
        self._process = process
        return self._adapter

    def _note(self, t: int, description: str, action: str) -> None:
        self.events_log.append((t, description))
        tel = _telemetry_current()
        if tel is not None:
            tel.inc("scale_events_total", action=action)
            tel.emit({"type": "scale", "round": t, "action": action, "description": description})

    # -- signal extraction --------------------------------------------------

    def _signal(self, record, adapter) -> float:
        if self.policy.controller == "utilization":
            total = adapter.capacity_total()
            if total is None:
                raise ConfigurationError(
                    "utilization controller needs bounded capacity "
                    "(an unbounded pool cannot report occupancy)"
                )
            self._last_signal = record.total_load / total if total else 0.0
            return self._last_signal
        counts = np.asarray(record.wait_counts)
        total = int(counts.sum()) if counts.size else 0
        if total:
            cumulative = np.cumsum(counts)
            rank = int(np.searchsorted(cumulative, np.ceil(0.99 * total)))
            rank = min(rank, len(record.wait_values) - 1)
            self._last_signal = float(record.wait_values[rank])
        return self._last_signal

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> dict:
        """Checkpoint the controller position (window, cooldown, RNG, log)."""
        return {
            "rng": self._rng.bit_generator.state,
            "window": list(self._window),
            "last_signal": self._last_signal,
            "last_scale_round": self._last_scale_round,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "capacity_raises": self.capacity_raises,
            "events_log": [[t, description] for t, description in self.events_log],
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (binding stays lazy)."""
        self._rng.bit_generator.state = state["rng"]
        self._window = [float(v) for v in state["window"]]
        self._last_signal = float(state["last_signal"])
        last = state["last_scale_round"]
        self._last_scale_round = None if last is None else int(last)
        self.scale_outs = int(state["scale_outs"])
        self.scale_ins = int(state["scale_ins"])
        self.capacity_raises = int(state["capacity_raises"])
        self.events_log = [(int(t), str(description)) for t, description in state["events_log"]]

    def remap_entities(self, mapping: np.ndarray) -> None:
        """No per-entity bookkeeping; present for uniform mutator wiring."""

    # -- the observer hook --------------------------------------------------

    def on_round(self, record, process: Any) -> None:
        adapter = self._bind(process)
        t = record.round
        policy = self.policy

        self._window.append(self._signal(record, adapter))
        if len(self._window) > policy.window:
            del self._window[: len(self._window) - policy.window]

        if t % policy.check_every != 0 or len(self._window) < policy.window:
            return
        if (
            self._last_scale_round is not None
            and t - self._last_scale_round < policy.cooldown
        ):
            return

        mean_signal = sum(self._window) / len(self._window)
        tel = _telemetry_current()
        if tel is not None:
            tel.set_gauge("autoscale_signal", mean_signal, controller=policy.controller)
        error = (mean_signal - policy.target) / policy.target
        if abs(error) <= policy.band:
            return

        step = min(policy.max_step, max(1, round(adapter.n * abs(error))))
        if error > 0:
            headroom = (
                step if policy.max_n is None else min(step, policy.max_n - adapter.n)
            )
            if headroom > 0:
                with _span("scale_event", component="autoscale", direction="out"):
                    adapter.join(headroom, None)
                self.scale_outs += 1
                self._last_scale_round = t
                self._window.clear()
                self._note(
                    t,
                    f"scale out +{headroom} (signal {mean_signal:.3f} > "
                    f"target {policy.target}) -> n={adapter.n}",
                    "scale_out",
                )
            else:
                capacity = adapter.capacity_scalar()
                if (
                    policy.capacity_max is not None
                    and capacity is not None
                    and capacity < policy.capacity_max
                ):
                    with _span("scale_event", component="autoscale", direction="capacity"):
                        adapter.set_capacity_all(capacity + 1)
                    self.capacity_raises += 1
                    self._last_scale_round = t
                    self._window.clear()
                    self._note(t, f"raise capacity to {capacity + 1} (n at max)", "raise_c")
        else:
            room = adapter.n - policy.min_n
            count = min(step, room)
            if count > 0:
                eligible = np.flatnonzero(~adapter.draining_mask())
                count = min(count, eligible.size)
                if count <= 0:
                    return
                victims = np.sort(self._rng.choice(eligible, size=count, replace=False))
                old_n = adapter.n
                with _span("scale_event", component="autoscale", direction="in"):
                    adapter.leave(victims, policy.policy)
                self._broadcast_remap(removal_mapping(old_n, victims))
                self.scale_ins += 1
                self._last_scale_round = t
                self._window.clear()
                self._note(
                    t,
                    f"scale in -{count} (signal {mean_signal:.3f} < "
                    f"target {policy.target}) -> n={adapter.n}",
                    "scale_in",
                )
        if tel is not None:
            tel.set_gauge("membership_n", adapter.n)
