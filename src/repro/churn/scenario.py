"""The unified chaos scenario DSL: churn + faults + autoscaling in one spec.

A :class:`ChaosScenario` bundles up to three immutable schedules — a
:class:`~repro.faults.schedule.FaultSchedule`, a
:class:`~repro.churn.schedule.ChurnSchedule`, and an
:class:`~repro.churn.autoscale.AutoscalingPolicy` — and builds the wired
observer pipeline for a run: churn injector first (membership changes land
before fault bookkeeping reads the round), then the fault injector, then the
autoscaler. Every observer that shrinks the pool notifies the others through
``remap_entities`` so per-entity bookkeeping survives index compaction.

Scenarios parse from plain dicts/JSON (``scenario_from_dict`` /
``scenario_from_json``), giving the CLI and CI a declarative surface::

    {
      "faults": {"seed": 1, "events": [
        {"type": "crash_burst", "at_round": 300, "fraction": 0.1, "duration": 50}
      ]},
      "churn": {"seed": 2, "min_n": 64, "events": [
        {"type": "join_burst", "at_round": 150, "count": 128},
        {"type": "leave_burst", "at_round": 400, "fraction": 0.25, "policy": "rehash"}
      ]},
      "autoscaling": {"controller": "utilization", "target": 0.7},
      "autoscale_seed": 3
    }

Event ``type`` names are the snake_case class names. Unknown keys anywhere
are a :class:`~repro.errors.ConfigurationError` (typos must not silently
produce a different scenario).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, fields as dataclass_fields

from repro.churn.autoscale import Autoscaler, AutoscalingPolicy
from repro.churn.injector import ChurnInjector
from repro.churn.schedule import ChurnSchedule
from repro.churn.schedule import _EVENT_TYPES as _CHURN_EVENT_TYPES
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.faults.schedule import _EVENT_TYPES as _FAULT_EVENT_TYPES

__all__ = ["ChaosScenario", "scenario_from_dict", "scenario_from_json"]


def _snake_case(name: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


#: type-name -> event class, for both halves of the DSL.
FAULT_EVENT_REGISTRY = {_snake_case(cls.__name__): cls for cls in _FAULT_EVENT_TYPES}
CHURN_EVENT_REGISTRY = {_snake_case(cls.__name__): cls for cls in _CHURN_EVENT_TYPES}


@dataclass(frozen=True)
class ChaosScenario:
    """Everything that goes wrong (and adapts) in one run.

    Any subset of the three parts may be present; an all-``None`` scenario
    builds an empty observer list and leaves the run untouched.
    """

    faults: FaultSchedule | None = None
    churn: ChurnSchedule | None = None
    autoscaling: AutoscalingPolicy | None = None
    autoscale_seed: int = 0

    def __post_init__(self) -> None:
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise ConfigurationError(
                f"faults must be a FaultSchedule, got {type(self.faults).__name__}"
            )
        if self.churn is not None and not isinstance(self.churn, ChurnSchedule):
            raise ConfigurationError(
                f"churn must be a ChurnSchedule, got {type(self.churn).__name__}"
            )
        if self.autoscaling is not None and not isinstance(self.autoscaling, AutoscalingPolicy):
            raise ConfigurationError(
                f"autoscaling must be an AutoscalingPolicy, got "
                f"{type(self.autoscaling).__name__}"
            )

    def __bool__(self) -> bool:
        return (
            (self.faults is not None and bool(self.faults))
            or (self.churn is not None and bool(self.churn))
            or self.autoscaling is not None
        )

    def build_observers(self) -> list:
        """Construct and cross-wire the observers for one run.

        Returns ``[ChurnInjector?, FaultInjector?, Autoscaler?]`` (present
        parts only, in that order) with remap listeners registered both
        ways: a shrink by the churn injector remaps the fault injector's
        down map, and a scale-in by the autoscaler remaps the churn
        injector's pending drains and the fault injector alike.
        """
        churn_injector = ChurnInjector(self.churn) if self.churn is not None else None
        fault_injector = FaultInjector(self.faults) if self.faults is not None else None
        autoscaler = (
            Autoscaler(self.autoscaling, seed=self.autoscale_seed)
            if self.autoscaling is not None
            else None
        )
        observers = [o for o in (churn_injector, fault_injector, autoscaler) if o is not None]
        for mutator in (churn_injector, autoscaler):
            if mutator is None:
                continue
            for listener in observers:
                if listener is not mutator and hasattr(listener, "remap_entities"):
                    mutator.add_remap_listener(listener)
        return observers


def _build_event(registry: dict, spec: dict, kind: str):
    spec = dict(spec)
    type_name = spec.pop("type", None)
    if type_name is None:
        raise ConfigurationError(f"{kind} event is missing its 'type' key: {spec}")
    cls = registry.get(type_name)
    if cls is None:
        raise ConfigurationError(
            f"unknown {kind} event type {type_name!r}; expected one of {sorted(registry)}"
        )
    allowed = {f.name for f in dataclass_fields(cls)}
    unknown = set(spec) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown keys {sorted(unknown)} for {kind} event {type_name!r}; "
            f"allowed: {sorted(allowed)}"
        )
    return cls(**spec)


def _build_schedule(spec: dict, kind: str, registry: dict, schedule_cls):
    spec = dict(spec)
    events = spec.pop("events", [])
    allowed = {f.name for f in dataclass_fields(schedule_cls)} - {"events"}
    unknown = set(spec) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown keys {sorted(unknown)} in {kind} schedule; allowed: {sorted(allowed)}"
        )
    built = tuple(_build_event(registry, event, kind) for event in events)
    return schedule_cls(events=built, **spec)


def scenario_from_dict(spec: dict) -> ChaosScenario:
    """Build a :class:`ChaosScenario` from its dict form (see module doc)."""
    if not isinstance(spec, dict):
        raise ConfigurationError(f"scenario must be a dict, got {type(spec).__name__}")
    spec = dict(spec)
    allowed = {"faults", "churn", "autoscaling", "autoscale_seed"}
    unknown = set(spec) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown scenario keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    faults = spec.get("faults")
    churn = spec.get("churn")
    autoscaling = spec.get("autoscaling")
    if autoscaling is not None:
        allowed_knobs = {f.name for f in dataclass_fields(AutoscalingPolicy)}
        unknown_knobs = set(autoscaling) - allowed_knobs
        if unknown_knobs:
            raise ConfigurationError(
                f"unknown autoscaling keys {sorted(unknown_knobs)}; "
                f"allowed: {sorted(allowed_knobs)}"
            )
    return ChaosScenario(
        faults=(
            None
            if faults is None
            else _build_schedule(faults, "fault", FAULT_EVENT_REGISTRY, FaultSchedule)
        ),
        churn=(
            None
            if churn is None
            else _build_schedule(churn, "churn", CHURN_EVENT_REGISTRY, ChurnSchedule)
        ),
        autoscaling=None if autoscaling is None else AutoscalingPolicy(**autoscaling),
        autoscale_seed=int(spec.get("autoscale_seed", 0)),
    )


def scenario_from_json(text: str) -> ChaosScenario:
    """Parse a scenario from its JSON text form."""
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"scenario is not valid JSON: {exc}") from exc
    return scenario_from_dict(spec)
