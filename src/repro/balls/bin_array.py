"""Vectorised array-of-bins state for the fast simulators.

For round-based processes with one FIFO deletion per bin per round, the
*identity* of queued balls is redundant: a ball that enters a bin at queue
position ``p`` (0-indexed from the head) in round ``t`` is deleted at the end
of round ``t + p``, because exactly one ball leaves the head each round while
the bin is non-empty. Its waiting time is therefore fully determined at
acceptance time:

``waiting time = (t - label) + p``  —  pool delay plus queue delay.

:class:`BinArray` exploits this by storing only the integer load of each bin
in a numpy array, which makes every per-round operation O(n) vectorised
arithmetic. The exact per-ball simulators keep real queues and are used in
the tests to validate this position-based accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation

__all__ = ["BinArray"]


class BinArray:
    """Loads of ``n`` bins with a shared capacity, as a numpy vector.

    Parameters
    ----------
    n:
        Number of bins.
    capacity:
        Buffer capacity: a shared int ``c``, a per-bin integer array of
        shape ``(n,)`` (heterogeneous bins, after the non-uniform-bins
        line of work the paper cites [6]), or ``None`` for unbounded
        (CAPPED(∞, λ) ≡ GREEDY[1]).
    """

    __slots__ = ("n", "capacity", "loads", "_peak_load", "_total_accepted", "_total_deleted")

    def __init__(self, n: int, capacity) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if capacity is not None and not np.isscalar(capacity):
            capacity = np.asarray(capacity, dtype=np.int64)
            if capacity.shape != (n,):
                raise ConfigurationError(
                    f"per-bin capacities must have shape ({n},), got {capacity.shape}"
                )
            if np.any(capacity < 1):
                raise ConfigurationError("per-bin capacities must all be at least 1")
            capacity = capacity.copy()
        elif capacity is not None:
            if capacity < 1:
                raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
            capacity = int(capacity)
        self.n = n
        self.capacity = capacity
        self.loads = np.zeros(n, dtype=np.int64)
        self._peak_load = 0
        self._total_accepted = 0
        self._total_deleted = 0

    @property
    def peak_load(self) -> int:
        """Largest single-bin load ever observed."""
        return self._peak_load

    @property
    def total_accepted(self) -> int:
        """Balls accepted over the lifetime of the array."""
        return self._total_accepted

    @property
    def total_deleted(self) -> int:
        """Balls deleted over the lifetime of the array."""
        return self._total_deleted

    @property
    def total_load(self) -> int:
        """Sum of all bin loads."""
        return int(self.loads.sum())

    def free_slots(self) -> np.ndarray:
        """Per-bin remaining capacity ``c - ℓ_i`` (∞ bins report a sentinel).

        For unbounded bins a value larger than any realistic request count
        (2**62) is returned so that ``minimum(requests, free)`` never caps.
        """
        if self.capacity is None:
            return np.full(self.n, 2**62, dtype=np.int64)
        return self.capacity - self.loads

    def accept(self, requests: np.ndarray) -> np.ndarray:
        """Accept as many requests per bin as capacity allows.

        Parameters
        ----------
        requests:
            Integer array of shape ``(n,)``: balls requesting each bin.

        Returns
        -------
        numpy.ndarray
            Per-bin accepted counts ``min(requests, c - ℓ_i)``; loads are
            updated in place.
        """
        if requests.shape != (self.n,):
            raise ValueError(f"requests must have shape ({self.n},), got {requests.shape}")
        accepted = np.minimum(requests, self.free_slots())
        self.loads += accepted
        self._total_accepted += int(accepted.sum())
        peak = int(self.loads.max()) if self.n else 0
        if peak > self._peak_load:
            self._peak_load = peak
        return accepted

    def delete_one_each(self) -> int:
        """End-of-round FIFO deletion: every non-empty bin deletes one ball.

        Returns the number of bins that deleted (i.e. successful deletion
        attempts in the paper's terminology).
        """
        nonempty = self.loads > 0
        deleted = int(np.count_nonzero(nonempty))
        self.loads[nonempty] -= 1
        self._total_deleted += deleted
        return deleted

    def reset(self) -> None:
        """Empty all bins."""
        self.loads[:] = 0

    def get_state(self) -> dict:
        """Snapshot for checkpoint/restore."""
        return {
            "loads": self.loads.tolist(),
            "peak_load": self._peak_load,
            "total_accepted": self._total_accepted,
            "total_deleted": self._total_deleted,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        loads = np.asarray(state["loads"], dtype=np.int64)
        if loads.shape != (self.n,):
            raise ValueError(f"state has {loads.shape} loads, expected ({self.n},)")
        self.loads = loads.copy()
        self._peak_load = int(state["peak_load"])
        self._total_accepted = int(state["total_accepted"])
        self._total_deleted = int(state["total_deleted"])
        self.check_invariants()

    def check_invariants(self) -> None:
        """Loads must be non-negative and within capacity."""
        if np.any(self.loads < 0):
            raise InvariantViolation("negative bin load")
        if self.capacity is not None and np.any(self.loads > self.capacity):
            raise InvariantViolation(
                f"bin load exceeds capacity {self.capacity}: max {int(self.loads.max())}"
            )
