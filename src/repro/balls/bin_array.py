"""Vectorised array-of-bins state for the fast simulators.

For round-based processes with one FIFO deletion per bin per round, the
*identity* of queued balls is redundant: a ball that enters a bin at queue
position ``p`` (0-indexed from the head) in round ``t`` is deleted at the end
of round ``t + p``, because exactly one ball leaves the head each round while
the bin is non-empty. Its waiting time is therefore fully determined at
acceptance time:

``waiting time = (t - label) + p``  —  pool delay plus queue delay.

:class:`BinArray` exploits this by storing only the integer load of each bin
in a numpy array, which makes every per-round operation O(n) vectorised
arithmetic. The exact per-ball simulators keep real queues and are used in
the tests to validate this position-based accounting.

Fault support
-------------
Bins can be marked *down* (:meth:`set_down`): a down bin reports zero free
slots and performs no FIFO deletion, so it neither accepts nor serves until
:meth:`set_up`. Capacities can be changed mid-run (:meth:`set_capacity`),
which models temporary capacity degradation; because a degradation can drop
capacity below the current load, the invariant checked is ``load <= high-water
capacity`` — a bin never holds more balls than the largest capacity it has
ever been configured with. Note that the positional wait identity above
assumes uninterrupted unit service; while a bin is down its queue is frozen,
so waits recorded during an outage window are lower bounds.

Elastic membership
------------------
Bins can join and leave mid-run (``repro.churn``). :meth:`grow` appends fresh
empty bins; :meth:`shrink` removes bins by index under one of the
:data:`SHRINK_POLICIES`: ``rehash`` (queued balls on removed bins are
displaced — the caller re-injects them into the pool), ``drop`` (queued balls
are destroyed, the count is returned for accounting), and ``drain`` (the bins
must already be empty; :meth:`seal` turns acceptance off while FIFO service
continues, so a caller seals first and removes once the queues empty). Both
operations keep every incremental cache — free slots, histogram carry, the
down/draining masks, the high-water capacities, and the running counters —
coherent, and :meth:`set_state` adopts the snapshot's bin count so a
checkpoint taken after a resize restores into a process constructed at the
original size.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation

__all__ = ["BinArray", "SHRINK_POLICIES"]

#: How :meth:`BinArray.shrink` treats queued balls on removed bins.
#: ``rehash``: displaced balls are reported to the caller for re-injection
#: into the pool (they re-enter the placement process). ``drop``: displaced
#: balls are destroyed (the count is returned for accounting). ``drain``:
#: removal requires the bins to be empty — seal them first and remove later.
SHRINK_POLICIES = ("rehash", "drop", "drain")


class BinArray:
    """Loads of ``n`` bins with a shared capacity, as a numpy vector.

    Parameters
    ----------
    n:
        Number of bins.
    capacity:
        Buffer capacity: a shared int ``c``, a per-bin integer array of
        shape ``(n,)`` (heterogeneous bins, after the non-uniform-bins
        line of work the paper cites [6]), or ``None`` for unbounded
        (CAPPED(∞, λ) ≡ GREEDY[1]).
    """

    __slots__ = (
        "n",
        "capacity",
        "loads",
        "down",
        "draining",
        "_any_down",
        "_any_draining",
        "_capacity_high_water",
        "_free",
        "_free_dirty",
        "_hist_cache",
        "_maybe_overcap",
        "_peak_load",
        "_total_accepted",
        "_total_deleted",
        "_total_load",
    )

    def __init__(self, n: int, capacity) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if capacity is not None and not np.isscalar(capacity):
            capacity = np.asarray(capacity, dtype=np.int64)
            if capacity.shape != (n,):
                raise ConfigurationError(
                    f"per-bin capacities must have shape ({n},), got {capacity.shape}"
                )
            if np.any(capacity < 1):
                raise ConfigurationError("per-bin capacities must all be at least 1")
            capacity = capacity.copy()
        elif capacity is not None:
            if capacity < 1:
                raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
            capacity = int(capacity)
        self.n = n
        self.capacity = capacity
        self.loads = np.zeros(n, dtype=np.int64)
        self.down = np.zeros(n, dtype=bool)
        self._any_down = False
        self.draining = np.zeros(n, dtype=bool)
        self._any_draining = False
        # Largest capacity each bin has ever had, as an (n,) array; None once
        # unbounded.
        if capacity is None:
            self._capacity_high_water = None
        elif np.isscalar(capacity):
            self._capacity_high_water = np.full(n, capacity, dtype=np.int64)
        else:
            self._capacity_high_water = capacity.copy()
        # Incremental free-slots cache (see free_slots). For unbounded
        # arrays it is a constant sentinel vector.
        self._free_dirty = False
        self._maybe_overcap = False
        # Load histogram carried between serial-kernel rounds (see
        # cached_load_hist); any loads mutation outside commit_round
        # drops it.
        self._hist_cache = None
        if capacity is None:
            self._free = np.full(n, 2**62, dtype=np.int64)
        else:
            self._free = None
            self._refresh_free()
        self._peak_load = 0
        self._total_accepted = 0
        self._total_deleted = 0
        self._total_load = 0

    def _refresh_free(self) -> None:
        """Recompute the free-slots cache in place after a bulk mutation.

        The hot per-round operations (:meth:`accept`, :meth:`delete_one_each`)
        maintain the cache incrementally; everything that rewrites loads or
        capacities wholesale (capacity changes, wipes, restores) calls this.
        """
        if self.capacity is None:
            # Unbounded: the sentinel never depends on loads.
            if self._free is None:
                self._free = np.empty(self.n, dtype=np.int64)
            self._free.fill(2**62)
            self._free_dirty = False
            return
        if self._free is None:
            self._free = np.empty(self.n, dtype=np.int64)
        np.subtract(self.capacity, self.loads, out=self._free)
        np.maximum(self._free, 0, out=self._free)
        self._free_dirty = False

    @property
    def peak_load(self) -> int:
        """Largest single-bin load ever observed."""
        return self._peak_load

    @property
    def total_accepted(self) -> int:
        """Balls accepted over the lifetime of the array."""
        return self._total_accepted

    @property
    def total_deleted(self) -> int:
        """Balls deleted over the lifetime of the array."""
        return self._total_deleted

    @property
    def total_load(self) -> int:
        """Sum of all bin loads (O(1): maintained as a running counter)."""
        return self._total_load

    @property
    def down_count(self) -> int:
        """Number of bins currently down."""
        return int(np.count_nonzero(self.down)) if self._any_down else 0

    @property
    def draining_count(self) -> int:
        """Number of bins currently sealed for draining."""
        return int(np.count_nonzero(self.draining)) if self._any_draining else 0

    def free_slots(self) -> np.ndarray:
        """Per-bin remaining capacity ``max(c - ℓ_i, 0)`` (∞ bins report a sentinel).

        For unbounded bins a value larger than any realistic request count
        (2**62) is returned so that ``minimum(requests, free)`` never caps.
        Down and draining (sealed) bins report zero. The clamp at zero
        matters after a capacity degradation leaves a bin holding more
        balls than its current cap.

        The returned array is an incrementally-maintained cache — **treat
        it as read-only**. On the fault-free path no recomputation or
        allocation happens per call (the serial-kernel commit marks the
        cache dirty instead of refreshing it, so a consumer that never
        asks never pays); only while bins are down or draining is a masked
        copy returned.
        """
        if self._free_dirty:
            self._refresh_free()
        if self._any_down or self._any_draining:
            free = self._free.copy()
            if self._any_down:
                free[self.down] = 0
            if self._any_draining:
                free[self.draining] = 0
            return free
        return self._free

    def accept(self, requests: np.ndarray) -> np.ndarray:
        """Accept as many requests per bin as capacity allows.

        Parameters
        ----------
        requests:
            Integer array of shape ``(n,)``: balls requesting each bin.

        Returns
        -------
        numpy.ndarray
            Per-bin accepted counts ``min(requests, c - ℓ_i)``; loads are
            updated in place.
        """
        if requests.shape != (self.n,):
            raise ValueError(f"requests must have shape ({self.n},), got {requests.shape}")
        accepted = np.minimum(requests, self.free_slots())
        self._hist_cache = None
        self.loads += accepted
        accepted_total = int(accepted.sum())
        if self.capacity is not None:
            # Incremental cache update: accepted ≤ free per bin, so the
            # clamp at zero is never violated by this subtraction.
            self._free -= accepted
        self._total_accepted += accepted_total
        self._total_load += accepted_total
        peak = int(self.loads.max()) if self.n else 0
        if peak > self._peak_load:
            self._peak_load = peak
        return accepted

    def commit_accepted(self, accepted: np.ndarray, total: int | None = None) -> int:
        """Commit per-bin accepted counts already clipped against free slots.

        The fused kernel (:mod:`repro.kernels.round`) computes
        ``min(requests, free)`` itself, so re-deriving it here as
        :meth:`accept` does would repeat two O(n) passes per round. The
        caller guarantees ``0 <= accepted <= free_slots()`` per bin (the
        kernel's clip) and may pass the pre-computed ``total`` to skip
        the summing pass — the kernel already knows it. ``accepted`` may
        be boolean (the unit-take kernel's 0/1 counts);
        :meth:`check_invariants` still verifies the resulting cache.
        Returns the total committed.
        """
        if self.capacity is not None and self._free_dirty:
            self._refresh_free()
        self._hist_cache = None
        self.loads += accepted
        accepted_total = int(accepted.sum()) if total is None else total
        if self.capacity is not None:
            self._free -= accepted
        self._total_accepted += accepted_total
        self._total_load += accepted_total
        # A scalar capacity the peak has already reached bounds every
        # load, so the max pass can't find anything new.
        if not (np.isscalar(self.capacity) and self._peak_load >= int(self.capacity)):
            peak = int(self.loads.max()) if self.n else 0
            if peak > self._peak_load:
                self._peak_load = peak
        return accepted_total

    def delete_one_each(self) -> int:
        """End-of-round FIFO deletion: every non-empty *up* bin deletes one ball.

        Returns the number of bins that deleted (i.e. successful deletion
        attempts in the paper's terminology). Down bins are frozen: their
        queues neither grow nor drain.
        """
        self._hist_cache = None
        if self._any_down:
            nonempty = (self.loads > 0) & ~self.down
            deleted = int(np.count_nonzero(nonempty))
            np.subtract(self.loads, nonempty, out=self.loads)
        else:
            # Fault-free fast path: max(ℓ − 1, 0) is subtract-one-from-
            # each-non-empty without a boolean mask or a fancy-index write.
            deleted = int(np.count_nonzero(self.loads))
            np.subtract(self.loads, 1, out=self.loads)
            np.maximum(self.loads, 0, out=self.loads)
        if self.capacity is not None:
            # In-place cache refresh: a plain +1 would be wrong for bins
            # left over capacity by a degradation (their free stays 0).
            np.subtract(self.capacity, self.loads, out=self._free)
            np.maximum(self._free, 0, out=self._free)
        self._free_dirty = False
        self._total_deleted += deleted
        self._total_load -= deleted
        return deleted

    def serial_round_limit(self, allow_unit_capacity: bool = False, freeze_down: bool = False):
        """Eligibility + parameters for the whole-round serial kernel.

        Returns ``(capacity_limit, hist_size)`` when this array can be
        driven by :func:`repro.kernels.round.resolve_capped_round_serial`
        — finite capacities, no down bins — or ``None`` when the caller
        must take the general path (unbounded bins, frozen down bins, or
        shared capacity 1 where the unit-take kernel is leaner).
        ``capacity_limit`` is the per-bin load ceiling ``max(capacity,
        load)``: a plain int for the common shared-capacity case (so the
        kernel clips against a scalar), an array only after a capacity
        degradation may have left bins over their cap, while bins are
        draining (their ceiling is clamped to the current load, so they
        accept nothing but still serve), or with ``freeze_down``.

        ``allow_unit_capacity=True`` keeps shared ``c = 1`` eligible: the
        sharded engine partitions the serial kernel across bin ranges and
        has no unit-take alternative, whereas the single-process caller
        prefers the leaner unit-take path there.

        ``freeze_down=True`` (sharded engine) keeps down bins eligible by
        clamping their ceiling to the current load — they accept nothing.
        The serial kernel still performs the FIFO deletion on every
        non-empty bin, so the *caller* must undo the deletion on down
        bins afterwards (they are frozen, not draining); see
        :meth:`repro.kernels.sharded.ShardedCappedProcess.step`.
        """
        if self.capacity is None:
            return None
        if self._any_down and not freeze_down:
            return None
        if not (self._any_draining or self._any_down):
            if np.isscalar(self.capacity):
                if self.capacity == 1 and not allow_unit_capacity:
                    return None
                if self._maybe_overcap and self._peak_load > self.capacity:
                    limit = np.maximum(self.capacity, self.loads)
                    return limit, self._peak_load + 1
                return int(self.capacity), int(self.capacity) + 1
            if self._maybe_overcap:
                limit = np.maximum(self.capacity, self.loads)
                return limit, max(int(self.capacity.max()), self._peak_load) + 1
            return self.capacity, int(self.capacity.max()) + 1
        # Draining and/or frozen-down bins: per-bin ceilings with the
        # affected bins clamped to their current load (accept nothing).
        if np.isscalar(self.capacity):
            if self.capacity == 1 and not allow_unit_capacity:
                return None
            if self._maybe_overcap and self._peak_load > self.capacity:
                limit = np.maximum(self.capacity, self.loads)
                hist_size = self._peak_load + 1
            else:
                limit = np.full(self.n, self.capacity, dtype=np.int64)
                hist_size = int(self.capacity) + 1
        elif self._maybe_overcap:
            limit = np.maximum(self.capacity, self.loads)
            hist_size = max(int(self.capacity.max()), self._peak_load) + 1
        else:
            limit = self.capacity.copy()
            hist_size = int(self.capacity.max()) + 1
        if self._any_draining:
            limit[self.draining] = self.loads[self.draining]
        if self._any_down:
            limit[self.down] = self.loads[self.down]
        return limit, hist_size

    def commit_round(self, resolved) -> None:
        """Install a :class:`~repro.kernels.round.SerialRound` outcome.

        The serial kernel owns its ``new_loads`` array (loads after
        acceptance *and* the FIFO deletion), so committing is a reference
        swap plus counter updates — no O(n) pass. The free-slots cache is
        only marked dirty: :meth:`free_slots` recomputes on the next read,
        and a consumer that never asks never pays.
        """
        self.loads = resolved.new_loads
        self._free_dirty = True
        self._hist_cache = resolved.next_hist
        self._total_accepted += resolved.accepted_total
        self._total_deleted += resolved.deleted
        self._total_load += resolved.accepted_total - resolved.deleted
        if resolved.peak_load > self._peak_load:
            self._peak_load = resolved.peak_load

    @property
    def hist_carry_intact(self) -> bool:
        """True while no mutation outside :meth:`commit_round` touched the
        loads since the last committed round.

        External consumers that keep their own histogram bookkeeping
        derived from the loads (the sharded engine's per-shard carries)
        use this to detect that a fault wipe, capacity change, or
        membership event intervened and their carry must be rebuilt.
        """
        return self._hist_cache is not None

    def cached_load_hist(self, hist_size: int):
        """Load histogram carried over from the previous serial round.

        ``commit_round`` stores the kernel's O(hist_size) post-deletion
        shift of its own histogram; while no other operation touches the
        loads, it *is* ``bincount(loads, minlength=hist_size)`` and the
        next round can skip that opening O(n) pass. Returns ``None``
        (recompute) whenever any other mutation intervened or the
        histogram width changed. The caller consumes the cache — the
        kernel mutates it — so it is handed out exactly once.
        """
        hist = self._hist_cache
        if hist is None or len(hist) != hist_size:
            return None
        self._hist_cache = None
        return hist

    def set_down(self, indices, wipe: bool = False) -> int:
        """Mark bins as down (crashed). Returns the number of balls wiped.

        With ``wipe=False`` (preserved buffers) queue contents survive the
        outage frozen in place; with ``wipe=True`` the crashed bins lose
        their queued balls, which is the count returned so callers can
        account for the loss.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        self._hist_cache = None
        wiped = 0
        if wipe and indices.size:
            wiped = int(self.loads[indices].sum())
            self.loads[indices] = 0
            self._total_load -= wiped
            self._refresh_free()
        self.down[indices] = True
        self._any_down = bool(self.down.any())
        return wiped

    def set_up(self, indices) -> None:
        """Bring bins back up; a preserved queue resumes FIFO service."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        self.down[indices] = False
        self._any_down = bool(self.down.any())

    def seal(self, indices) -> None:
        """Seal bins for draining: zero free slots, FIFO service continues.

        A sealed bin accepts no new balls but keeps deleting one per round,
        so its queue empties in at most ``load`` rounds — after which
        :meth:`shrink` with the ``drain`` policy can remove it without
        displacing anything. Loads are untouched, so the histogram carry
        stays valid; only the free-slots view changes.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        self.draining[indices] = True
        self._any_draining = bool(self.draining.any())

    def unseal(self, indices) -> None:
        """Reopen sealed bins for acceptance (an aborted drain)."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        self.draining[indices] = False
        self._any_draining = bool(self.draining.any())

    def set_capacity(self, capacity, indices=None) -> None:
        """Change the buffer capacity mid-run (capacity degradation faults).

        Parameters
        ----------
        capacity:
            New capacity: an int (``>= 1``), an integer array matching
            ``indices`` (or ``(n,)`` when ``indices`` is None), or ``None``
            for unbounded (only without ``indices``).
        indices:
            Bins to change; ``None`` applies to all bins.

        Existing loads are never truncated — a bin holding more than its new
        capacity simply reports zero free slots until it drains. The
        invariant tracked is the per-bin high-water capacity.
        """
        if capacity is None:
            if indices is not None:
                raise ConfigurationError("cannot set unbounded capacity on a subset of bins")
            self.capacity = None
            self._capacity_high_water = None
            self._refresh_free()
            return
        if indices is None:
            if np.isscalar(capacity):
                if capacity < 1:
                    raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
                capacity = int(capacity)
            else:
                capacity = np.asarray(capacity, dtype=np.int64)
                if capacity.shape != (self.n,):
                    raise ConfigurationError(
                        f"per-bin capacities must have shape ({self.n},), got {capacity.shape}"
                    )
                if np.any(capacity < 1):
                    raise ConfigurationError("per-bin capacities must all be at least 1")
                capacity = capacity.copy()
            self.capacity = capacity
        else:
            indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
            values = np.atleast_1d(np.asarray(capacity, dtype=np.int64))
            if values.size == 1:
                values = np.full(indices.shape, int(values[0]), dtype=np.int64)
            if values.shape != indices.shape:
                raise ConfigurationError(
                    f"capacity values {values.shape} do not match indices {indices.shape}"
                )
            if np.any(values < 1):
                raise ConfigurationError("per-bin capacities must all be at least 1")
            if self.capacity is None:
                raise ConfigurationError("cannot degrade a subset of an unbounded array")
            if np.isscalar(self.capacity):
                self.capacity = np.full(self.n, self.capacity, dtype=np.int64)
            self.capacity[indices] = values
        # A degradation may leave bins over their new (smaller) capacity;
        # from here on the serial-kernel eligibility check must clip
        # against max(capacity, load) rather than capacity alone.
        self._maybe_overcap = True
        # Update the high-water mark (unbounded never returns to bounded here).
        if self._capacity_high_water is not None:
            np.maximum(self._capacity_high_water, self.capacity, out=self._capacity_high_water)
        self._refresh_free()

    def capacity_of(self, indices) -> np.ndarray:
        """Current capacities of the given bins (for save/restore by injectors)."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if self.capacity is None:
            raise ConfigurationError("unbounded arrays have no per-bin capacity")
        if np.isscalar(self.capacity):
            return np.full(indices.shape, int(self.capacity), dtype=np.int64)
        return self.capacity[indices].copy()

    # -- elastic membership -------------------------------------------------

    def grow(self, count: int, capacity=None) -> np.ndarray:
        """Append ``count`` fresh empty bins (a join burst).

        Parameters
        ----------
        count:
            Bins to add (``>= 1``).
        capacity:
            Capacity of the new bins. ``None`` inherits: the shared scalar
            for homogeneous arrays, the current maximum for per-bin
            arrays. Unbounded arrays stay unbounded (an explicit capacity
            is rejected there — mixed bounded/unbounded bins are not a
            representable state).

        Returns
        -------
        numpy.ndarray
            Indices of the new bins (always the trailing range — existing
            bin indices are stable across a grow).
        """
        if count < 1:
            raise ConfigurationError(f"must add at least one bin, got {count}")
        if self.capacity is None:
            if capacity is not None:
                raise ConfigurationError("cannot add bounded bins to an unbounded array")
            new_cap = None
        elif capacity is None:
            new_cap = (
                int(self.capacity) if np.isscalar(self.capacity) else int(self.capacity.max())
            )
        else:
            new_cap = int(capacity)
            if new_cap < 1:
                raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
        old_n = self.n
        self.n = old_n + count
        self.loads = np.concatenate([self.loads, np.zeros(count, dtype=np.int64)])
        self.down = np.concatenate([self.down, np.zeros(count, dtype=bool)])
        self.draining = np.concatenate([self.draining, np.zeros(count, dtype=bool)])
        if self.capacity is not None:
            if np.isscalar(self.capacity):
                if new_cap != int(self.capacity):
                    # Heterogeneous from here on.
                    self.capacity = np.concatenate(
                        [
                            np.full(old_n, self.capacity, dtype=np.int64),
                            np.full(count, new_cap, dtype=np.int64),
                        ]
                    )
                # else: shared scalar covers the new bins unchanged.
            else:
                self.capacity = np.concatenate(
                    [self.capacity, np.full(count, new_cap, dtype=np.int64)]
                )
        if self._capacity_high_water is not None:
            self._capacity_high_water = np.concatenate(
                [self._capacity_high_water, np.full(count, new_cap, dtype=np.int64)]
            )
        self._hist_cache = None
        self._free = None
        self._refresh_free()
        return np.arange(old_n, self.n, dtype=np.int64)

    def shrink(self, indices, policy: str = "rehash") -> int:
        """Remove bins by index (a leave burst). Returns the displaced count.

        ``policy`` (one of :data:`SHRINK_POLICIES`) decides what the
        returned count *means*: with ``rehash`` the caller must re-inject
        that many balls into the pool (consistent re-hashing of the
        removed bins' queues); with ``drop`` they are simply gone; with
        ``drain`` the bins must already be empty (seal first, remove once
        drained) and the count is always zero.

        Removal compacts the array: surviving bins keep their relative
        order but indices above a removed bin shift down. Callers that
        track bin indices across rounds (fault injectors) must be
        re-mapped — see ``ChurnInjector.add_remap_listener``.
        """
        if policy not in SHRINK_POLICIES:
            raise ConfigurationError(
                f"shrink policy must be one of {SHRINK_POLICIES}, got {policy!r}"
            )
        indices = np.unique(np.atleast_1d(np.asarray(indices, dtype=np.int64)))
        if indices.size == 0:
            return 0
        if indices[0] < 0 or indices[-1] >= self.n:
            raise ConfigurationError(
                f"shrink indices must lie in [0, {self.n}), got "
                f"[{int(indices[0])}, {int(indices[-1])}]"
            )
        if indices.size >= self.n:
            raise ConfigurationError("cannot remove every bin")
        displaced = int(self.loads[indices].sum())
        if policy == "drain" and displaced:
            raise ConfigurationError(
                f"drain removal requires empty bins, but {displaced} balls remain "
                "(seal the bins and wait for their queues to empty)"
            )
        keep = np.ones(self.n, dtype=bool)
        keep[indices] = False
        self.loads = self.loads[keep]
        self.down = self.down[keep]
        self._any_down = bool(self.down.any())
        self.draining = self.draining[keep]
        self._any_draining = bool(self.draining.any())
        if self.capacity is not None and not np.isscalar(self.capacity):
            self.capacity = self.capacity[keep]
        if self._capacity_high_water is not None:
            self._capacity_high_water = self._capacity_high_water[keep]
        self.n -= int(indices.size)
        self._total_load -= displaced
        self._hist_cache = None
        self._free = None
        self._refresh_free()
        return displaced

    def reset(self) -> None:
        """Empty all bins."""
        self.loads[:] = 0
        self._total_load = 0
        self._hist_cache = None
        self._refresh_free()

    def get_state(self) -> dict:
        """Snapshot for checkpoint/restore.

        Includes the *current* capacity (None / int / per-bin list): a
        capacity-degradation fault may have changed it since construction,
        and restoring only the high-water mark would silently resume with
        the wrong free-slot budget.
        """
        if self.capacity is None or np.isscalar(self.capacity):
            capacity = self.capacity if self.capacity is None else int(self.capacity)
        else:
            capacity = self.capacity.tolist()
        state = {
            "loads": self.loads.tolist(),
            "capacity": capacity,
            "peak_load": self._peak_load,
            "total_accepted": self._total_accepted,
            "total_deleted": self._total_deleted,
        }
        if self._any_down:
            state["down"] = self.down.tolist()
        if self._any_draining:
            state["draining"] = self.draining.tolist()
        if self._capacity_high_water is not None:
            state["capacity_high_water"] = self._capacity_high_water.tolist()
        return state

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`.

        Membership is adopted from the snapshot: a state recorded after a
        :meth:`grow`/:meth:`shrink` restores into an array constructed at
        a different size by resizing to match (churn-aware checkpointing).
        """
        loads = np.asarray(state["loads"], dtype=np.int64)
        if loads.ndim != 1 or loads.size < 1:
            raise ValueError(f"state loads must be a non-empty vector, got shape {loads.shape}")
        if loads.shape != (self.n,):
            # Elastic membership: the snapshot was taken after bins joined
            # or left. Adopt its bin count wholesale.
            self.n = int(loads.size)
        self.loads = loads.copy()
        down = state.get("down")
        self.down = (
            np.asarray(down, dtype=bool).copy()
            if down is not None
            else np.zeros(self.n, dtype=bool)
        )
        self._any_down = bool(self.down.any())
        draining = state.get("draining")
        self.draining = (
            np.asarray(draining, dtype=bool).copy()
            if draining is not None
            else np.zeros(self.n, dtype=bool)
        )
        self._any_draining = bool(self.draining.any())
        if "capacity" in state:
            # Snapshots taken before any degradation carry the constructed
            # capacity back unchanged; mid-degradation ones restore the
            # exact reduced budget.
            capacity = state["capacity"]
            if capacity is None or isinstance(capacity, int):
                self.capacity = capacity
            else:
                self.capacity = np.asarray(capacity, dtype=np.int64)
            if capacity is None:
                self._capacity_high_water = None
        high_water = state.get("capacity_high_water")
        if high_water is not None:
            self._capacity_high_water = np.asarray(high_water, dtype=np.int64)
        self._peak_load = int(state["peak_load"])
        self._total_accepted = int(state["total_accepted"])
        self._total_deleted = int(state["total_deleted"])
        self._total_load = int(self.loads.sum())
        # A restored snapshot may predate or follow a degradation; assume
        # loads can exceed capacity until proven otherwise.
        self._maybe_overcap = True
        self._hist_cache = None
        self._free = None  # sized for the adopted n on the refresh below
        self._refresh_free()
        self.check_invariants()

    def check_invariants(self) -> None:
        """Loads must be non-negative and within the high-water capacity.

        The bound is the *high-water* capacity rather than the current one:
        a capacity-degradation fault may legitimately leave a bin holding
        more balls than its (temporarily reduced) current capacity, but a
        bin can never hold more than the largest capacity it ever had.
        """
        if (
            self.loads.shape != (self.n,)
            or self.down.shape != (self.n,)
            or self.draining.shape != (self.n,)
        ):
            raise InvariantViolation(
                f"membership arrays out of sync with n={self.n}: loads {self.loads.shape}, "
                f"down {self.down.shape}, draining {self.draining.shape}"
            )
        if (
            self.capacity is not None
            and not np.isscalar(self.capacity)
            and self.capacity.shape != (self.n,)
        ):
            raise InvariantViolation(
                f"per-bin capacities {self.capacity.shape} out of sync with n={self.n}"
            )
        if np.any(self.loads < 0):
            raise InvariantViolation("negative bin load")
        if self._total_load != int(self.loads.sum()):
            raise InvariantViolation(
                f"total-load counter {self._total_load} != actual {int(self.loads.sum())}"
            )
        if self._free_dirty:
            self._refresh_free()
        if self.capacity is None:
            expected_free = np.full(self.n, 2**62, dtype=np.int64)
        else:
            expected_free = np.maximum(self.capacity - self.loads, 0)
        if not np.array_equal(self._free, expected_free):
            raise InvariantViolation("free-slots cache out of sync with loads")
        if self._hist_cache is not None and list(self._hist_cache) != np.bincount(
            self.loads, minlength=len(self._hist_cache)
        ).tolist():
            raise InvariantViolation("load-histogram cache out of sync with loads")
        if self._capacity_high_water is not None and np.any(self.loads > self._capacity_high_water):
            worst = int(np.argmax(self.loads - self._capacity_high_water))
            raise InvariantViolation(
                f"bin {worst} load {int(self.loads[worst])} exceeds its high-water "
                f"capacity {int(self._capacity_high_water[worst])}"
            )
