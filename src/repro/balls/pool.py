"""The pool of unallocated balls, bucketed by generation round.

The paper's pool ``M(t)`` contains every ball that has been generated but not
yet accepted by a bin. Two facts make a *bucketed* representation the right
data structure:

1. Balls generated in the same round are exchangeable — the process treats
   them identically ("ties broken arbitrarily") — so only the *count* per
   generation round matters for the dynamics.
2. Acceptance is oldest-first, so iteration must visit buckets in increasing
   label order.

:class:`AgePool` therefore stores ``{label: count}`` in label order, giving
O(#distinct ages) rounds instead of O(#balls), which is what makes the
vectorised simulator fast. The exact per-ball simulator uses explicit
:class:`~repro.balls.ball.Ball` lists instead and is cross-validated against
this representation in the test suite.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import InvariantViolation

__all__ = ["AgePool"]


class AgePool:
    """Multiset of balls keyed by generation round, oldest first.

    Examples
    --------
    >>> pool = AgePool()
    >>> pool.add(label=1, count=3)
    >>> pool.add(label=2, count=2)
    >>> pool.size
    5
    >>> pool.remove_oldest(4)
    >>> list(pool.buckets())
    [(2, 1)]
    """

    __slots__ = ("_labels", "_counts", "_size")

    def __init__(self) -> None:
        # Parallel lists sorted by label ascending. Labels are appended in
        # increasing order by the simulators (one new bucket per round), so
        # appends keep the order without searching.
        self._labels: list[int] = []
        self._counts: list[int] = []
        self._size = 0

    @property
    def size(self) -> int:
        """Total number of balls in the pool (``m(t)`` in the paper)."""
        return self._size

    @property
    def num_buckets(self) -> int:
        """Number of distinct generation rounds present."""
        return len(self._labels)

    @property
    def oldest_label(self) -> int | None:
        """Smallest generation round present, or ``None`` if empty."""
        return self._labels[0] if self._labels else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AgePool(size={self._size}, buckets={self.num_buckets})"

    def count(self, label: int) -> int:
        """Number of pool balls generated in round ``label``."""
        lo = self._find(label)
        if lo is None:
            return 0
        return self._counts[lo]

    def _find(self, label: int) -> int | None:
        # Linear scan is fine: bucket counts are tiny (bounded by the
        # waiting time, which the paper bounds by ~log log n + O(c)).
        for i, existing in enumerate(self._labels):
            if existing == label:
                return i
        return None

    def add(self, label: int, count: int) -> None:
        """Add ``count`` balls generated in round ``label``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        if self._labels and label < self._labels[-1]:
            # Out-of-order insert; keep sorted order. Only failure-injection
            # tests exercise this path — simulators insert monotonically.
            idx = self._find(label)
            if idx is not None:
                self._counts[idx] += count
            else:
                pos = 0
                while pos < len(self._labels) and self._labels[pos] < label:
                    pos += 1
                self._labels.insert(pos, label)
                self._counts.insert(pos, count)
        elif self._labels and label == self._labels[-1]:
            self._counts[-1] += count
        else:
            self._labels.append(label)
            self._counts.append(count)
        self._size += count

    def buckets(self) -> Iterator[tuple[int, int]]:
        """Yield ``(label, count)`` pairs oldest first."""
        yield from zip(self._labels, self._counts)

    def labels(self) -> list[int]:
        """Labels present, oldest first (a copy)."""
        return list(self._labels)

    def counts(self) -> list[int]:
        """Counts aligned with :meth:`labels` (a copy)."""
        return list(self._counts)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Labels and counts as aligned int64 arrays, oldest first.

        The age-major snapshot the fused round kernel consumes; both
        arrays are fresh copies, safe against later pool mutation.
        """
        return (
            np.asarray(self._labels, dtype=np.int64),
            np.asarray(self._counts, dtype=np.int64),
        )

    def remove_bulk(self, removed) -> None:
        """Remove ``removed[i]`` balls from the i-th bucket (oldest first).

        The counterpart of :meth:`as_arrays`: one call commits a whole
        round's per-bucket acceptance counts, in O(#buckets) total instead
        of one :meth:`remove` lookup per bucket.

        Raises
        ------
        InvariantViolation
            If ``removed`` is not aligned with the current buckets or any
            entry exceeds its bucket's count.
        """
        if type(removed) is list:
            # Serial-kernel fast path: per-bucket counts arrive as plain
            # ints, so skip the array round-trip entirely.
            removed_list = removed
        else:
            removed = np.atleast_1d(np.asarray(removed, dtype=np.int64))
            if removed.ndim != 1:
                raise InvariantViolation(
                    f"bulk removal of {removed.shape} entries does not match "
                    f"{len(self._labels)} buckets"
                )
            removed_list = removed.tolist()
        if len(removed_list) != len(self._labels):
            raise InvariantViolation(
                f"bulk removal of {len(removed_list)} entries does not match "
                f"{len(self._labels)} buckets"
            )
        kept_labels: list[int] = []
        kept_counts: list[int] = []
        total = 0
        for label, have, take in zip(self._labels, self._counts, removed_list):
            if take < 0 or take > have:
                raise InvariantViolation(
                    f"cannot remove {take} balls labeled {label}: bucket holds {have}"
                )
            total += take
            if have != take:
                kept_labels.append(label)
                kept_counts.append(have - take)
        self._labels = kept_labels
        self._counts = kept_counts
        self._size -= total

    def remove(self, label: int, count: int) -> None:
        """Remove ``count`` balls generated in round ``label``.

        Raises
        ------
        InvariantViolation
            If the bucket holds fewer than ``count`` balls — simulators only
            remove balls they previously threw, so underflow is a bug.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        idx = self._find(label)
        if idx is None or self._counts[idx] < count:
            have = 0 if idx is None else self._counts[idx]
            raise InvariantViolation(
                f"cannot remove {count} balls labeled {label}: bucket holds {have}"
            )
        self._counts[idx] -= count
        self._size -= count
        if self._counts[idx] == 0:
            del self._labels[idx]
            del self._counts[idx]

    def remove_oldest(self, count: int) -> None:
        """Remove the ``count`` oldest balls across buckets.

        Raises
        ------
        InvariantViolation
            If the pool holds fewer than ``count`` balls.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self._size:
            raise InvariantViolation(
                f"cannot remove {count} balls from a pool of size {self._size}"
            )
        remaining = count
        while remaining > 0:
            take = min(remaining, self._counts[0])
            self._counts[0] -= take
            remaining -= take
            self._size -= take
            if self._counts[0] == 0:
                del self._labels[0]
                del self._counts[0]

    def max_age(self, current_round: int) -> int:
        """Age of the oldest pool ball in ``current_round`` (0 if empty)."""
        if not self._labels:
            return 0
        return current_round - self._labels[0]

    def clear(self) -> None:
        """Empty the pool."""
        self._labels.clear()
        self._counts.clear()
        self._size = 0

    def get_state(self) -> dict:
        """Snapshot for checkpoint/restore (plain JSON-able dict)."""
        return {"labels": list(self._labels), "counts": list(self._counts)}

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._labels = [int(x) for x in state["labels"]]
        self._counts = [int(x) for x in state["counts"]]
        self._size = sum(self._counts)
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify internal consistency (sortedness, positive counts, size)."""
        if any(c <= 0 for c in self._counts):
            raise InvariantViolation("pool bucket with non-positive count")
        if any(a >= b for a, b in zip(self._labels, self._labels[1:])):
            raise InvariantViolation("pool labels not strictly increasing")
        if sum(self._counts) != self._size:
            raise InvariantViolation(f"pool size cache {self._size} != actual {sum(self._counts)}")
