"""Ball, bin, and pool data structures.

This subpackage provides the low-level containers shared by all simulated
processes:

* :class:`~repro.balls.ball.Ball` — an individual request with a generation
  round (its *label* in the paper's terminology).
* :class:`~repro.balls.buffer.BinBuffer` — a bounded FIFO queue modelling a
  single bin of capacity ``c``.
* :class:`~repro.balls.pool.AgePool` — the pool of unallocated balls, kept as
  ordered age buckets so that "oldest first" acceptance is O(#distinct ages)
  instead of O(#balls).
* :class:`~repro.balls.bin_array.BinArray` — a vectorised array-of-bins state
  used by the fast simulators.
"""

from repro.balls.ball import Ball
from repro.balls.bin_array import BinArray
from repro.balls.buffer import BinBuffer
from repro.balls.pool import AgePool

__all__ = ["Ball", "BinBuffer", "AgePool", "BinArray"]
