"""The :class:`Ball` record.

In the paper a ball generated in round ``t`` is "labeled with t", and its
*age* in round ``t'`` is ``t' - t``. We additionally give each ball a
sequence number so that individual balls can be tracked through the exact
(per-ball) simulators and so that the paper's coupling arguments — which
number balls and prefer smaller numbers — can be implemented literally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

__all__ = ["Ball", "BallIdAllocator"]


@dataclass(frozen=True, slots=True, order=True)
class Ball:
    """A single request.

    Ordering is lexicographic on ``(label, serial)``: older balls (smaller
    label) sort first, matching the paper's "prefer balls of higher age"
    acceptance rule, with serial numbers as the arbitrary-but-fixed
    tie-breaker.

    Attributes
    ----------
    label:
        The round in which the ball was generated.
    serial:
        A unique sequence number (unique per simulator run).
    """

    label: int
    serial: int

    def age(self, current_round: int) -> int:
        """Age of the ball in ``current_round`` (paper Section II)."""
        if current_round < self.label:
            raise ValueError(
                f"ball labeled {self.label} cannot have an age in earlier round {current_round}"
            )
        return current_round - self.label


@dataclass
class BallIdAllocator:
    """Hands out unique serial numbers for balls within one simulation."""

    _counter: "count[int]" = field(default_factory=count, repr=False)

    def make(self, label: int) -> Ball:
        """Create a fresh ball generated in round ``label``."""
        return Ball(label=label, serial=next(self._counter))

    def make_batch(self, label: int, size: int) -> list[Ball]:
        """Create ``size`` fresh balls generated in round ``label``."""
        if size < 0:
            raise ValueError(f"batch size must be non-negative, got {size}")
        return [self.make(label) for _ in range(size)]
