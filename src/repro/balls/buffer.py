"""Bounded FIFO buffer modelling a single bin.

The paper's bins "accept as many balls as possible until its buffer is full,
preferring balls of higher age" and delete "the ball it allocated first"
(FIFO). :class:`BinBuffer` implements exactly this contract for the exact
per-ball simulators; the fast simulators use the vectorised
:class:`~repro.balls.bin_array.BinArray` instead.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.balls.ball import Ball
from repro.errors import CapacityExceeded, ConfigurationError

__all__ = ["BinBuffer"]


class BinBuffer:
    """A FIFO queue of balls with a hard capacity.

    Parameters
    ----------
    capacity:
        Maximum number of balls stored simultaneously. ``math.inf`` is
        allowed and yields an unbounded bin (CAPPED(∞, λ) ≡ GREEDY[1],
        paper Section II).

    Examples
    --------
    >>> b = BinBuffer(capacity=2)
    >>> b.accept([Ball(0, 0), Ball(0, 1), Ball(0, 2)])
    2
    >>> b.load
    2
    >>> b.delete_first().serial
    0
    """

    __slots__ = ("_capacity", "_queue", "_peak_load", "_total_accepted", "_total_deleted")

    def __init__(self, capacity: float = math.inf) -> None:
        if capacity != math.inf:
            if not isinstance(capacity, (int,)) or isinstance(capacity, bool):
                raise ConfigurationError(f"capacity must be an int or math.inf, got {capacity!r}")
            if capacity < 1:
                raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
        self._capacity = capacity
        self._queue: deque[Ball] = deque()
        self._peak_load = 0
        self._total_accepted = 0
        self._total_deleted = 0

    @property
    def capacity(self) -> float:
        """The buffer's capacity ``c`` (possibly ``math.inf``)."""
        return self._capacity

    @property
    def load(self) -> int:
        """Current number of stored balls (``ℓ_i`` in the paper)."""
        return len(self._queue)

    @property
    def free_slots(self) -> float:
        """Remaining capacity, ``c - ℓ_i``."""
        return self._capacity - len(self._queue)

    @property
    def peak_load(self) -> int:
        """Largest load ever observed (for diagnostics)."""
        return self._peak_load

    @property
    def total_accepted(self) -> int:
        """Number of balls accepted over the buffer's lifetime."""
        return self._total_accepted

    @property
    def total_deleted(self) -> int:
        """Number of balls deleted over the buffer's lifetime."""
        return self._total_deleted

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Ball]:
        """Iterate stored balls in FIFO (deletion) order."""
        return iter(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinBuffer(capacity={self._capacity}, load={self.load})"

    def accept(self, requests: Iterable[Ball]) -> int:
        """Accept the oldest requests up to the free capacity.

        Implements the paper's acceptance rule: a bin receiving ``ν_i``
        requests accepts the ``min(c - ℓ_i, ν_i)`` oldest balls. The
        accepted balls are appended to the FIFO queue oldest-first, and the
        number of accepted balls is returned. The caller is responsible for
        removing accepted balls from the pool.
        """
        candidates = sorted(requests)
        take = len(candidates) if self._capacity == math.inf else min(
            len(candidates), int(self._capacity) - len(self._queue)
        )
        for ball in candidates[:take]:
            self._queue.append(ball)
        self._total_accepted += take
        if len(self._queue) > self._peak_load:
            self._peak_load = len(self._queue)
        return take

    def push(self, ball: Ball) -> None:
        """Append a single ball, raising :class:`CapacityExceeded` if full.

        Used by sequential baselines that commit one ball at a time.
        """
        if len(self._queue) >= self._capacity:
            raise CapacityExceeded(
                f"buffer of capacity {self._capacity} is full (load {len(self._queue)})"
            )
        self._queue.append(ball)
        self._total_accepted += 1
        if len(self._queue) > self._peak_load:
            self._peak_load = len(self._queue)

    def delete_first(self) -> Optional[Ball]:
        """Delete and return the FIFO head, or ``None`` if empty.

        Implements the paper's "every bin deletes the ball it allocated
        first" end-of-round step.
        """
        if not self._queue:
            return None
        self._total_deleted += 1
        return self._queue.popleft()

    def peek(self) -> Optional[Ball]:
        """Return the FIFO head without removing it, or ``None`` if empty."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        """Remove all stored balls (used when resetting a simulation)."""
        self._queue.clear()

    def check_invariants(self) -> None:
        """Raise :class:`CapacityExceeded` if the load exceeds the capacity.

        The queue must also be in FIFO-consistent order with respect to
        deletion rounds; that is enforced structurally by the deque and not
        re-checked here.
        """
        if len(self._queue) > self._capacity:
            raise CapacityExceeded(f"load {len(self._queue)} exceeds capacity {self._capacity}")
