"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvariantViolation",
    "CapacityExceeded",
    "SimulationError",
    "ExperimentError",
    "ParallelExecutionError",
    "ChaosInjected",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or experiment was configured with invalid parameters.

    Examples include a non-integral number of arrivals per round
    (the paper requires ``lambda * n`` to be an integer), a non-positive
    number of bins, or a capacity below one.
    """


class InvariantViolation(ReproError, AssertionError):
    """A process invariant that should hold by construction was violated.

    These indicate bugs in the library (or deliberately broken states in
    failure-injection tests), never user error.
    """


class CapacityExceeded(InvariantViolation):
    """A bounded buffer was asked to hold more balls than its capacity."""


class SimulationError(ReproError, RuntimeError):
    """A simulation could not be run or continued."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment definition could not be resolved or executed."""


class ParallelExecutionError(ReproError, RuntimeError):
    """The parallel runner could not plan, execute, or replay a sweep.

    Raised for unknown task kinds, replay passes missing precomputed
    outcomes, and resume attempts without a journal to resume from.
    """


class ChaosInjected(ReproError, RuntimeError):
    """A deliberately injected harness-level fault (see :mod:`repro.faults.chaos`).

    Only ever raised when the ``REPRO_CHAOS`` environment variable arms the
    chaos hooks — production runs never see it. Distinguishable from real
    failures so tests can assert the retry/quarantine machinery handled an
    *injected* fault rather than masking a genuine bug.
    """
