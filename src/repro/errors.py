"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvariantViolation",
    "CapacityExceeded",
    "SimulationError",
    "ExperimentError",
    "ParallelExecutionError",
    "DistributedError",
    "ProtocolError",
    "ChaosInjected",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointIncompatible",
    "GracefulShutdown",
    "SHUTDOWN_EXIT_CODE",
]

#: Process exit code for a run stopped by SIGINT/SIGTERM after a clean
#: shutdown (journal flushed, checkpoints durable). Distinct from argparse
#: usage errors (2), experiment failures (3), and the shell's raw 130/143
#: so wrappers can tell "stopped cleanly, resume me" from "died".
SHUTDOWN_EXIT_CODE = 75


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A simulation or experiment was configured with invalid parameters.

    Examples include a non-integral number of arrivals per round
    (the paper requires ``lambda * n`` to be an integer), a non-positive
    number of bins, or a capacity below one.
    """


class InvariantViolation(ReproError, AssertionError):
    """A process invariant that should hold by construction was violated.

    These indicate bugs in the library (or deliberately broken states in
    failure-injection tests), never user error.
    """


class CapacityExceeded(InvariantViolation):
    """A bounded buffer was asked to hold more balls than its capacity."""


class SimulationError(ReproError, RuntimeError):
    """A simulation could not be run or continued."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment definition could not be resolved or executed."""


class ParallelExecutionError(ReproError, RuntimeError):
    """The parallel runner could not plan, execute, or replay a sweep.

    Raised for unknown task kinds, replay passes missing precomputed
    outcomes, and resume attempts without a journal to resume from.
    """


class DistributedError(ReproError, RuntimeError):
    """The broker-backed distributed runner could not execute a sweep.

    Raised for unreachable brokers, rejected handshakes (protocol or code
    fingerprint mismatch), and submit/stream sessions that end before
    every task is resolved.
    """


class ProtocolError(DistributedError):
    """A broker connection carried a malformed or torn frame.

    Frames are length-prefixed JSON (see :mod:`repro.distributed.protocol`);
    a short read inside a frame means the peer died mid-write. The broker
    treats this exactly like a vanished worker: drop the connection and
    re-lease its in-flight work — at-least-once delivery over idempotent
    task digests makes the retry safe.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, read, or restored."""


class CheckpointCorrupt(CheckpointError):
    """A snapshot file is torn or fails its integrity digest.

    Raised by :func:`repro.checkpoint.read_checkpoint` when the file is not
    parseable JSON, is missing required fields, or its payload hashes to a
    different sha256 than the one recorded at write time. The store treats
    this as "skip and fall back to the previous snapshot", never fatal.
    """


class CheckpointIncompatible(CheckpointError):
    """A snapshot was written by a different schema version or code state.

    Restoring across code changes could silently produce wrong numbers, so
    a fingerprint mismatch refuses to load instead (same philosophy as the
    content-addressed cache: stale entries go cold, never wrong).
    """


class GracefulShutdown(ReproError, RuntimeError):
    """A SIGINT/SIGTERM was converted into an orderly stop.

    Raised at a safe point (between tasks / after a completed round) once a
    termination signal is observed, after durable state — the journal and
    any configured checkpoints — has been flushed. Callers translate it to
    :data:`SHUTDOWN_EXIT_CODE`.
    """

    def __init__(self, message: str, signal_number: int | None = None) -> None:
        super().__init__(message)
        self.signal_number = signal_number


class ChaosInjected(ReproError, RuntimeError):
    """A deliberately injected harness-level fault (see :mod:`repro.faults.chaos`).

    Only ever raised when the ``REPRO_CHAOS`` environment variable arms the
    chaos hooks — production runs never see it. Distinguishable from real
    failures so tests can assert the retry/quarantine machinery handled an
    *injected* fault rather than masking a genuine bug.
    """
