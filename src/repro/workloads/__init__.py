"""Arrival (ball-generation) models.

The paper's main model generates exactly ``λn`` balls per round and requires
``λn ∈ ℕ``. Footnote 2 notes the results carry over to probabilistic
generation with expected rate λ; related work uses binomial
(Berenbrink et al., SPAA'00) and Poisson (Mitzenmacher) arrivals. This
subpackage provides all of those plus bursty and scripted adversarial
injectors for robustness experiments.
"""

from repro.workloads.arrivals import (
    AdversarialArrivals,
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    HeavyTailedArrivals,
    PoissonArrivals,
    StochasticDiurnalArrivals,
    TraceArrivals,
    make_arrivals,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "BernoulliArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "StochasticDiurnalArrivals",
    "HeavyTailedArrivals",
    "AdversarialArrivals",
    "TraceArrivals",
    "make_arrivals",
]
