"""Arrival process implementations.

Every arrival process answers one question per round: *how many new balls
are generated?* The interface is deliberately tiny so that simulators can be
parametrised by arbitrary arrival behaviour without knowing anything about
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "BernoulliArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "StochasticDiurnalArrivals",
    "HeavyTailedArrivals",
    "AdversarialArrivals",
    "TraceArrivals",
    "make_arrivals",
]


@runtime_checkable
class ArrivalProcess(Protocol):
    """Per-round ball-generation model."""

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        """Number of balls generated at the beginning of ``round_index``."""
        ...  # pragma: no cover - protocol

    @property
    def mean_rate(self) -> float:
        """Expected arrivals per round divided by n (the effective λ)."""
        ...  # pragma: no cover - protocol


def _check_lambda(lam: float) -> None:
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"injection rate lambda must lie in [0, 1), got {lam}")


@dataclass(frozen=True, slots=True)
class DeterministicArrivals:
    """Exactly ``λn`` balls per round — the paper's model.

    The paper assumes ``λn ∈ ℕ``; we enforce it (within floating-point
    tolerance) rather than silently rounding, because a silent round-off
    changes the effective injection rate of long runs.
    """

    n: int
    lam: float

    def __post_init__(self) -> None:
        _check_lambda(self.lam)
        per_round = self.lam * self.n
        if abs(per_round - round(per_round)) > 1e-9:
            raise ConfigurationError(
                f"lambda*n must be an integer (paper Section II); got {self.lam}*{self.n}={per_round}"
            )

    @property
    def per_round(self) -> int:
        """The integer ``λn``."""
        return round(self.lam * self.n)

    @property
    def mean_rate(self) -> float:
        return self.lam

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return self.per_round


@dataclass(frozen=True, slots=True)
class BernoulliArrivals:
    """Each of ``n`` generators emits one ball with probability λ.

    The probabilistic model from the paper's footnote 2: n generators with
    expected injection rate λ, i.e. Binomial(n, λ) arrivals per round.
    """

    n: int
    lam: float

    def __post_init__(self) -> None:
        _check_lambda(self.lam)

    @property
    def mean_rate(self) -> float:
        return self.lam

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return int(rng.binomial(self.n, self.lam))


@dataclass(frozen=True, slots=True)
class PoissonArrivals:
    """Poisson(λn) arrivals per round (Mitzenmacher's arrival model)."""

    n: int
    lam: float

    def __post_init__(self) -> None:
        _check_lambda(self.lam)

    @property
    def mean_rate(self) -> float:
        return self.lam

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.lam * self.n))


@dataclass(frozen=True, slots=True)
class BurstyArrivals:
    """On/off bursts with a preserved long-run rate.

    Alternates ``on_rounds`` of rate ``λ_high`` with ``off_rounds`` of rate
    ``λ_low``. Useful for probing how quickly the pool drains after bursts;
    note the paper's theorems assume a constant rate, so this is a
    robustness extension, not a reproduction target.
    """

    n: int
    lam_high: float
    lam_low: float
    on_rounds: int
    off_rounds: int

    def __post_init__(self) -> None:
        _check_lambda(self.lam_low)
        if not 0.0 <= self.lam_high <= 1.0:
            raise ConfigurationError(f"lam_high must lie in [0, 1], got {self.lam_high}")
        if self.lam_high < self.lam_low:
            raise ConfigurationError("lam_high must be at least lam_low")
        if self.on_rounds < 1 or self.off_rounds < 1:
            raise ConfigurationError("on_rounds and off_rounds must be positive")

    @property
    def mean_rate(self) -> float:
        total = self.on_rounds + self.off_rounds
        return (self.lam_high * self.on_rounds + self.lam_low * self.off_rounds) / total

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        period = self.on_rounds + self.off_rounds
        phase = (round_index - 1) % period
        rate = self.lam_high if phase < self.on_rounds else self.lam_low
        return int(round(rate * self.n))


@dataclass(frozen=True, slots=True)
class AdversarialArrivals:
    """Arrivals given by an arbitrary round→count function.

    The schedule callable receives the 1-based round index and must return
    a non-negative integer. ``nominal_rate`` is reported as ``mean_rate``
    for bookkeeping only.
    """

    n: int
    schedule: Callable[[int], int]
    nominal_rate: float = 0.0

    @property
    def mean_rate(self) -> float:
        return self.nominal_rate

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        count = self.schedule(round_index)
        if count < 0:
            raise ConfigurationError(f"schedule returned negative arrivals: {count}")
        return int(count)


@dataclass(frozen=True, slots=True)
class DiurnalArrivals:
    """Sinusoidal day/night rate: λ(t) = base + amplitude·sin(2πt/period).

    A smooth non-adversarial time-varying workload for robustness studies
    — the paper's theorems assume a constant rate, so this is an extension
    model. The instantaneous rate is clamped to [0, 1].
    """

    n: int
    base: float
    amplitude: float
    period: int

    def __post_init__(self) -> None:
        _check_lambda(self.base)
        if self.amplitude < 0:
            raise ConfigurationError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.period < 2:
            raise ConfigurationError(f"period must be at least 2, got {self.period}")

    @property
    def mean_rate(self) -> float:
        return self.base

    def rate_at(self, round_index: int) -> float:
        """Instantaneous rate in ``round_index`` (clamped to [0, 1])."""
        import math

        phase = 2.0 * math.pi * (round_index - 1) / self.period
        return min(1.0, max(0.0, self.base + self.amplitude * math.sin(phase)))

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return int(round(self.rate_at(round_index) * self.n))


@dataclass(frozen=True, slots=True)
class StochasticDiurnalArrivals:
    """Poisson arrivals modulated by a day/night cycle.

    The instantaneous rate follows the same clamped sinusoid as
    :class:`DiurnalArrivals` — ``λ(t) = base + amplitude·sin(2πt/period)``
    — but the per-round count is ``Poisson(λ(t)·n)`` drawn from the
    simulator's RNG, so identical seeds give identical traces (the
    determinism contract churn scenarios rely on) while consecutive rounds
    still fluctuate like real traffic.
    """

    n: int
    base: float
    amplitude: float
    period: int

    def __post_init__(self) -> None:
        _check_lambda(self.base)
        if self.amplitude < 0:
            raise ConfigurationError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.period < 2:
            raise ConfigurationError(f"period must be at least 2, got {self.period}")

    @property
    def mean_rate(self) -> float:
        return self.base

    def rate_at(self, round_index: int) -> float:
        """Instantaneous rate in ``round_index`` (clamped to [0, 1])."""
        import math

        phase = 2.0 * math.pi * (round_index - 1) / self.period
        return min(1.0, max(0.0, self.base + self.amplitude * math.sin(phase)))

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate_at(round_index) * self.n))


@dataclass(frozen=True, slots=True)
class HeavyTailedArrivals:
    """A steady base rate plus rare heavy-tailed bursts (flash crowds).

    Every round delivers the deterministic floor ``λn``; with probability
    ``burst_prob`` a burst of ``round(min(burst_cap, 1 + Pareto(alpha)) ·
    burst_scale · n)`` extra balls lands on top. ``alpha`` is the tail
    index (smaller = heavier; ``alpha ≤ 1`` has infinite untruncated mean,
    which is why ``burst_cap`` — in multiples of ``burst_scale·n`` — is
    mandatory). All randomness comes from the simulator RNG, so the trace
    is seed-deterministic.
    """

    n: int
    lam: float
    burst_prob: float = 0.05
    alpha: float = 1.5
    burst_scale: float = 0.5
    burst_cap: float = 20.0

    def __post_init__(self) -> None:
        _check_lambda(self.lam)
        if not 0.0 < self.burst_prob <= 1.0:
            raise ConfigurationError(f"burst_prob must be in (0, 1], got {self.burst_prob}")
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.burst_scale <= 0.0:
            raise ConfigurationError(f"burst_scale must be positive, got {self.burst_scale}")
        if self.burst_cap < 1.0:
            raise ConfigurationError(f"burst_cap must be >= 1, got {self.burst_cap}")

    @property
    def mean_burst_multiple(self) -> float:
        """``E[min(burst_cap, 1 + Pareto(alpha))]`` — exact truncated mean.

        ``X = 1 + Pareto(alpha)`` has survival ``P(X > x) = x^-alpha`` for
        ``x >= 1``, so ``E[min(c, X)] = 1 + ∫₁^c x^-alpha dx``.
        """
        import math

        c, a = self.burst_cap, self.alpha
        if a == 1.0:
            return 1.0 + math.log(c)
        return 1.0 + (1.0 - c ** (1.0 - a)) / (a - 1.0)

    @property
    def mean_rate(self) -> float:
        return self.lam + self.burst_prob * self.burst_scale * self.mean_burst_multiple

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        count = round(self.lam * self.n)
        if rng.random() < self.burst_prob:
            size = min(self.burst_cap, 1.0 + rng.pareto(self.alpha))
            count += round(size * self.burst_scale * self.n)
        return int(count)


@dataclass(frozen=True, slots=True)
class TraceArrivals:
    """Replays a fixed arrival trace, then repeats it cyclically."""

    n: int
    trace: Sequence[int] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.trace:
            raise ConfigurationError("trace must be non-empty")
        if any(x < 0 for x in self.trace):
            raise ConfigurationError("trace entries must be non-negative")

    @property
    def mean_rate(self) -> float:
        return sum(self.trace) / (len(self.trace) * self.n)

    def arrivals(self, round_index: int, rng: np.random.Generator) -> int:
        return int(self.trace[(round_index - 1) % len(self.trace)])


def make_arrivals(kind: str, n: int, lam: float, **kwargs) -> ArrivalProcess:
    """Factory mapping a string name to an arrival process.

    Recognised kinds: ``deterministic`` (paper default), ``bernoulli``,
    ``poisson``, ``diurnal`` (seeded Poisson with sinusoidal rate; ``lam``
    becomes ``base``), and ``heavy_tailed`` (Pareto flash crowds). Extra
    keyword arguments are forwarded to the constructor.
    """
    kinds = {
        "deterministic": DeterministicArrivals,
        "bernoulli": BernoulliArrivals,
        "poisson": PoissonArrivals,
        "heavy_tailed": HeavyTailedArrivals,
    }
    if kind == "diurnal":
        return StochasticDiurnalArrivals(n=n, base=lam, **kwargs)
    if kind not in kinds:
        raise ConfigurationError(
            f"unknown arrival kind {kind!r}; choose from {sorted(kinds) + ['diurnal']}"
        )
    return kinds[kind](n=n, lam=lam, **kwargs)
