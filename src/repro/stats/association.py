"""Empirical negative-association diagnostics.

The paper's Chernoff arguments apply to *negatively associated* indicator
families — the empty-bins indicators of Dubhashi & Ranjan ("Balls and bins:
a study in negative dependence", cited as [13]). Negative association is a
strong property; a cheap necessary condition that simulations can verify is
non-positive pairwise covariance of every increasing function pair, and in
particular of the indicators themselves.

These helpers estimate pairwise indicator covariances from repeated trials
and are used by the test suite to confirm that the indicator families the
proofs rely on (empty bins per round, failed deletion attempts) behave as
the citations assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PairwiseCovarianceReport", "pairwise_covariance_report", "empty_bin_indicators"]


@dataclass(frozen=True, slots=True)
class PairwiseCovarianceReport:
    """Summary of estimated pairwise covariances of indicator variables.

    Attributes
    ----------
    max_covariance:
        Largest off-diagonal covariance estimate.
    mean_covariance:
        Mean off-diagonal covariance (negative for NA families).
    pairs:
        Number of variable pairs considered.
    trials:
        Number of independent trials used for estimation.
    tolerance:
        Sampling-noise allowance used by :meth:`consistent_with_na`.
    """

    max_covariance: float
    mean_covariance: float
    pairs: int
    trials: int
    tolerance: float

    def consistent_with_na(self) -> bool:
        """Whether the estimates are consistent with negative association.

        True when no pairwise covariance exceeds the sampling tolerance
        (NA implies every pairwise covariance is ≤ 0).
        """
        return self.max_covariance <= self.tolerance


def pairwise_covariance_report(
    trials_matrix: np.ndarray,
    tolerance: float | None = None,
) -> PairwiseCovarianceReport:
    """Estimate pairwise covariances from a (trials × variables) 0/1 matrix.

    Parameters
    ----------
    trials_matrix:
        One row per independent trial, one column per indicator variable.
    tolerance:
        Noise allowance for :meth:`PairwiseCovarianceReport.consistent_with_na`;
        defaults to ``4/√trials`` (several standard errors of a covariance
        of bounded variables).
    """
    data = np.asarray(trials_matrix, dtype=float)
    if data.ndim != 2 or data.shape[0] < 2 or data.shape[1] < 2:
        raise ValueError("need a (trials >= 2) x (variables >= 2) matrix")
    trials, variables = data.shape
    covariance = np.cov(data, rowvar=False)
    off_diagonal = covariance[~np.eye(variables, dtype=bool)]
    if tolerance is None:
        tolerance = 4.0 / np.sqrt(trials)
    return PairwiseCovarianceReport(
        max_covariance=float(off_diagonal.max()),
        mean_covariance=float(off_diagonal.mean()),
        pairs=variables * (variables - 1) // 2,
        trials=trials,
        tolerance=float(tolerance),
    )


def empty_bin_indicators(
    n: int,
    balls: int,
    trials: int,
    rng: np.random.Generator,
    bins_to_watch: int | None = None,
) -> np.ndarray:
    """Sample the empty-bin indicator family of Dubhashi & Ranjan.

    Throws ``balls`` balls into ``n`` bins ``trials`` times and returns the
    (trials × watched-bins) 0/1 matrix of "bin i received no ball". This is
    exactly the family whose negative association justifies the Chernoff
    application in Lemma 2.
    """
    if n < 2:
        raise ValueError(f"need at least two bins, got {n}")
    if balls < 0 or trials < 1:
        raise ValueError("balls must be >= 0 and trials >= 1")
    watch = n if bins_to_watch is None else min(bins_to_watch, n)
    out = np.empty((trials, watch), dtype=np.int8)
    for trial in range(trials):
        loads = np.bincount(rng.integers(0, n, size=balls), minlength=n)
        out[trial] = (loads[:watch] == 0).astype(np.int8)
    return out
