"""Tail bounds from the paper's Appendix A.

These closed-form bounds are what the proofs of Theorems 1 and 2 are built
on. We implement them both as documentation-in-code and because the
:mod:`repro.core.theory` module and several tests use them to compute the
paper's probability guarantees for concrete parameter choices.

* Lemma 8 — the ``2^{-R}`` Chernoff variant (Aspnes' notes, based on
  Mitzenmacher–Upfal Thm 4.4): for independent Bernoulli sum ``X`` and any
  ``R ≥ 2e·E[X]``, ``Pr[X ≥ R] ≤ 2^{-R}``.
* Lemma 9 — multiplicative Chernoff:
  ``Pr[X ≥ (1+δ)μ] ≤ exp(-δ²μ / (2+δ))``.
* Lemma 10 — concentration of the number of empty bins (Motwani–Raghavan
  Thm 4.18): ``Pr[|Z − E[Z]| ≥ λ] ≤ 2·exp(−λ²(n−1/2)/(n²−E[Z]²))``.
* Lemma 11 — domination of adaptively-bounded indicator sums by a binomial
  (Azar et al., Lemma 3.1); we expose the resulting binomial tail.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_2exp_bound",
    "chernoff_multiplicative_bound",
    "empty_bins_concentration",
    "binomial_domination_tail",
    "binomial_tail_upper",
]


def chernoff_2exp_bound(mean: float, threshold: float) -> float:
    """Lemma 8: bound ``Pr[X ≥ R] ≤ 2^{-R}`` for ``R ≥ 2e·E[X]``.

    Parameters
    ----------
    mean:
        ``E[X]`` for a sum of independent Bernoulli variables.
    threshold:
        The value ``R``.

    Returns
    -------
    float
        ``2^{-R}`` when the precondition ``R ≥ 2e·mean`` holds.

    Raises
    ------
    ValueError
        If the precondition fails (the bound is simply not applicable).
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if threshold < 2 * math.e * mean:
        raise ValueError(
            f"Lemma 8 requires R >= 2e*mean = {2 * math.e * mean:.6g}, got R={threshold:.6g}"
        )
    # 2**(-R) underflows to 0.0 for huge R, which is the correct limit.
    try:
        return 2.0 ** (-threshold)
    except OverflowError:  # pragma: no cover - enormous negative exponent
        return 0.0


def chernoff_multiplicative_bound(mean: float, delta: float) -> float:
    """Lemma 9: ``Pr[X ≥ (1+δ)μ] ≤ exp(−δ²μ/(2+δ))`` for ``δ > 0``."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return math.exp(-(delta**2) * mean / (2 + delta))


def empty_bins_concentration(n: int, expected_empty: float, deviation: float) -> float:
    """Lemma 10: two-sided tail for the number of empty bins.

    ``Pr[|Z − E[Z]| ≥ λ] ≤ 2·exp(−λ²(n−1/2)/(n²−E[Z]²))`` where ``Z`` is the
    number of empty bins after throwing balls into ``n`` bins.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not 0 <= expected_empty <= n:
        raise ValueError(f"expected_empty must lie in [0, {n}], got {expected_empty}")
    if deviation <= 0:
        raise ValueError(f"deviation must be positive, got {deviation}")
    denominator = n * n - expected_empty * expected_empty
    if denominator <= 0:
        # Every bin is (expected to be) empty; Z is deterministic.
        return 0.0
    return min(1.0, 2.0 * math.exp(-(deviation**2) * (n - 0.5) / denominator))


def binomial_tail_upper(trials: int, p: float, threshold: int) -> float:
    """Exact upper tail ``Pr[B(trials, p) ≥ threshold]``.

    Computed by direct summation with running-product PMF updates. Used as
    the right-hand side of Lemma 11.
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if threshold <= 0:
        return 1.0
    if threshold > trials:
        return 0.0
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    # Work in log space to stay stable for large `trials`.
    log_p = math.log(p)
    log_q = math.log1p(-p)
    log_pmf = trials * log_q  # Pr[B = 0]
    total = 0.0
    for k in range(trials + 1):
        if k >= threshold:
            total += math.exp(log_pmf)
        if k < trials:
            log_pmf += math.log(trials - k) - math.log(k + 1) + log_p - log_q
    return min(1.0, total)


def binomial_domination_tail(trials: int, p: float, threshold: int) -> float:
    """Lemma 11: tail bound for adaptively bounded indicator sums.

    If ``Y_1..Y_n`` are binary with ``Pr[Y_i = 1 | history] ≤ p``, then
    ``Pr[ΣY_i ≥ k] ≤ Pr[B(n, p) ≥ k]``. This helper simply evaluates the
    binomial right-hand side; it is the quantity used in layered-induction
    arguments such as Lemma 5.
    """
    return binomial_tail_upper(trials, p, threshold)
