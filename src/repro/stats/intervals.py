"""Confidence intervals for experiment reporting.

The experiment harness reports means over replicated runs; these helpers
attach normal-approximation and bootstrap confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng import resolve_rng

__all__ = ["ConfidenceInterval", "normal_ci", "bootstrap_ci"]

# Two-sided standard-normal quantiles for common confidence levels. scipy is
# an optional dependency, so we keep a small table and interpolate.
_Z_TABLE = {
    0.80: 1.2815515655,
    0.90: 1.6448536270,
    0.95: 1.9599639845,
    0.98: 2.3263478740,
    0.99: 2.5758293035,
}


def _z_value(confidence: float) -> float:
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    # Acklam-style rational approximation of the normal quantile; accurate to
    # ~1e-9 which is far beyond what a CI display needs.
    p = 1 - (1 - confidence) / 2
    if not 0.5 < p < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # Beasley-Springer-Moro
    a = [2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637]
    b = [-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833]
    c = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ]
    y = p - 0.5
    if abs(y) < 0.42:
        r = y * y
        num = y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0])
        den = (((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1
        return num / den
    r = math.log(-math.log(1 - p))
    z = c[0]
    power = 1.0
    for coef in c[1:]:
        power *= r
        z += coef * power
    return z


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A point estimate with a symmetric-or-not confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half of the interval width (useful for ± display)."""
        return (self.high - self.low) / 2

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}]"


def normal_ci(samples: np.ndarray | list[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of ``samples``.

    With a single sample the interval degenerates to a point.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot build a confidence interval from no samples")
    mean = float(data.mean())
    if data.size == 1:
        return ConfidenceInterval(mean, mean, mean, confidence)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    z = _z_value(confidence)
    return ConfidenceInterval(mean, mean - z * sem, mean + z * sem, confidence)


def bootstrap_ci(
    samples: np.ndarray | list[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    statistic=np.mean,
    rng=None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for an arbitrary ``statistic``.

    Parameters
    ----------
    samples:
        Observed values.
    resamples:
        Number of bootstrap resamples.
    statistic:
        Callable mapping an array to a scalar (default: mean).
    rng:
        Anything accepted by :func:`repro.rng.resolve_rng`.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap from no samples")
    if resamples < 1:
        raise ValueError(f"resamples must be positive, got {resamples}")
    generator = resolve_rng(rng, "bootstrap")
    estimate = float(statistic(data))
    if data.size == 1:
        return ConfidenceInterval(estimate, estimate, estimate, confidence)
    idx = generator.integers(0, data.size, size=(resamples, data.size))
    stats = np.apply_along_axis(statistic, 1, data[idx])
    alpha = (1 - confidence) / 2
    low, high = np.quantile(stats, [alpha, 1 - alpha])
    return ConfidenceInterval(estimate, float(low), float(high), confidence)
