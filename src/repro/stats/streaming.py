"""Streaming statistics collectors.

Simulations run for thousands of rounds and produce millions of waiting-time
observations; storing them all would dominate memory. The collectors here
maintain constant-size summaries:

* :class:`RunningStats` — Welford's online mean/variance plus min/max,
  with support for *weighted* bulk updates (the fast simulator reports an
  entire round's waiting times as per-value counts).
* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac for a single
  quantile without storing samples.
* :class:`Histogram` — an integer-valued histogram with automatic growth,
  exact quantiles, and merge support (waiting times are small non-negative
  integers, so this is both exact and compact).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

__all__ = ["RunningStats", "P2Quantile", "Histogram"]


class RunningStats:
    """Welford online mean/variance with weights, min, and max.

    Examples
    --------
    >>> s = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> float:
        """Total weight of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Weighted mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance with Bessel correction (0.0 for < 2 obs)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def add(self, value: float, weight: float = 1.0) -> None:
        """Record ``value`` with multiplicity ``weight``.

        Uses the standard weighted-Welford update, which is exact for
        integer weights (equivalent to ``weight`` repeated calls).
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        if weight == 0:
            return
        self._count += weight
        delta = value - self._mean
        self._mean += delta * weight / self._count
        self._m2 += weight * delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Iterable[float]) -> None:
        """Record each value in ``values`` with weight one."""
        for value in values:
            self.add(value)

    def get_state(self) -> dict:
        """Snapshot for checkpoint/restore (JSON-able; ±inf round-trips)."""
        return {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "min": self._min,
            "max": self._max,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` exactly.

        The Welford accumulators are restored bit-for-bit (floats survive
        JSON via shortest-round-trip repr), so a restored collector
        continues the identical sequence of updates.
        """
        self._count = float(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._min = float(state["min"])
        self._max = float(state["max"])

    def merge(self, other: "RunningStats") -> None:
        """Fold another collector into this one (parallel Welford merge)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac, 1985).

    Tracks an approximate ``q``-quantile using five markers and O(1) memory.
    Falls back to exact order statistics until five observations have been
    seen.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    def add(self, value: float) -> None:
        """Record a single observation."""
        self._count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
                self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
            return

    # ---- steady state ------------------------------------------------
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or (d <= -1 and pos[i - 1] - pos[i] < -1):
                sign = 1.0 if d >= 1 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + sign / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + sign) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - sign) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact below five observations)."""
        if self._count == 0:
            return math.nan
        if len(self._initial) < 5:
            data = sorted(self._initial)
            idx = min(len(data) - 1, int(self.q * len(data)))
            return data[idx]
        return self._heights[2]


class Histogram:
    """Exact histogram over small non-negative integers.

    Waiting times and loads in these processes are small integers, so an
    array-backed histogram is both exact and far cheaper than sample
    storage. Bins grow on demand.
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, initial_size: int = 64) -> None:
        if initial_size < 1:
            raise ValueError(f"initial_size must be positive, got {initial_size}")
        self._counts = np.zeros(initial_size, dtype=np.int64)
        self._total = 0

    @property
    def total(self) -> int:
        """Total number of recorded observations."""
        return self._total

    def _grow_to(self, value: int) -> None:
        size = len(self._counts)
        while size <= value:
            size *= 2
        if size != len(self._counts):
            grown = np.zeros(size, dtype=np.int64)
            grown[: len(self._counts)] = self._counts
            self._counts = grown

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` observations equal to ``value``."""
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._grow_to(value)
        self._counts[value] += count
        self._total += count

    def add_array(self, values: np.ndarray, counts: np.ndarray) -> None:
        """Bulk-record ``counts[i]`` observations of ``values[i]``."""
        if len(values) == 0:
            return
        if np.any(values < 0) or np.any(counts < 0):
            raise ValueError("values and counts must be non-negative")
        self._grow_to(int(values.max()))
        np.add.at(self._counts, values.astype(np.int64), counts.astype(np.int64))
        self._total += int(counts.sum())

    def counts(self) -> np.ndarray:
        """The raw counts array, trimmed to the last non-zero value."""
        nonzero = np.nonzero(self._counts)[0]
        if len(nonzero) == 0:
            return np.zeros(0, dtype=np.int64)
        return self._counts[: int(nonzero[-1]) + 1].copy()

    @property
    def mean(self) -> float:
        """Mean of recorded observations (0.0 when empty)."""
        if self._total == 0:
            return 0.0
        values = np.arange(len(self._counts))
        return float((values * self._counts).sum() / self._total)

    @property
    def max(self) -> int:
        """Largest recorded value (−1 when empty)."""
        nonzero = np.nonzero(self._counts)[0]
        return int(nonzero[-1]) if len(nonzero) else -1

    @property
    def min(self) -> int:
        """Smallest recorded value (−1 when empty)."""
        nonzero = np.nonzero(self._counts)[0]
        return int(nonzero[0]) if len(nonzero) else -1

    def quantile(self, q: float) -> int:
        """Exact ``q``-quantile (inverted CDF, numpy's ``inverted_cdf``).

        Returns the smallest value whose cumulative count reaches
        ``ceil(q·total)`` (at least 1, so ``quantile(0.0)`` is the minimum).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            raise ValueError("empty histogram has no quantiles")
        rank = max(1, math.ceil(q * self._total))
        cumulative = np.cumsum(self._counts)
        return int(np.searchsorted(cumulative, rank, side="left"))

    def get_state(self) -> dict:
        """Snapshot for checkpoint/restore (counts trimmed to non-zero)."""
        return {"counts": self.counts().tolist(), "total": self._total}

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state`."""
        counts = np.asarray(state["counts"], dtype=np.int64)
        size = max(len(self._counts), len(counts))
        self._counts = np.zeros(size, dtype=np.int64)
        self._counts[: len(counts)] = counts
        self._total = int(state["total"])

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one."""
        other_counts = other.counts()
        if len(other_counts) == 0:
            return
        self._grow_to(len(other_counts) - 1)
        self._counts[: len(other_counts)] += other_counts
        self._total += other.total
