"""Empirical stochastic-dominance checks.

The paper's pool-size analysis rests on coupling lemmas (Lemmas 1 and 6):
under the constructed coupling, the pool size of CAPPED is *pointwise* at
most the pool size of MODCAPPED in every round, which implies stochastic
dominance of the marginals. This module provides

* :func:`coupled_dominance_report` — the pointwise check for coupled runs
  (the strongest possible empirical validation of the lemmas), and
* :func:`stochastically_dominates` — a CDF-based first-order dominance check
  for *independent* samples, used when comparing uncoupled runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "empirical_cdf", "stochastically_dominates", "coupled_dominance_report", "DominanceReport"
]


def empirical_cdf(samples: np.ndarray | list[float]):
    """Return a vectorised empirical CDF function for ``samples``."""
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ValueError("cannot build a CDF from no samples")

    def cdf(x):
        return np.searchsorted(data, x, side="right") / data.size

    return cdf


def stochastically_dominates(
    larger: np.ndarray | list[float],
    smaller: np.ndarray | list[float],
    tolerance: float = 0.0,
) -> bool:
    """First-order dominance check: ``larger ⪰ smaller``.

    Returns ``True`` if the empirical CDF of ``larger`` lies below (at most
    ``tolerance`` above) that of ``smaller`` everywhere, i.e.
    ``F_larger(x) ≤ F_smaller(x) + tolerance`` for all x. A positive
    tolerance absorbs sampling noise when the samples are independent.
    """
    big = np.asarray(larger, dtype=float)
    small = np.asarray(smaller, dtype=float)
    if big.size == 0 or small.size == 0:
        raise ValueError("need samples on both sides")
    grid = np.union1d(big, small)
    cdf_big = empirical_cdf(big)
    cdf_small = empirical_cdf(small)
    return bool(np.all(cdf_big(grid) <= cdf_small(grid) + tolerance))


@dataclass(frozen=True, slots=True)
class DominanceReport:
    """Outcome of a pointwise coupled-dominance check.

    Attributes
    ----------
    holds:
        True iff ``dominated[t] ≤ dominating[t]`` for every t.
    violations:
        Number of rounds where the inequality failed.
    worst_gap:
        Largest value of ``dominated[t] − dominating[t]`` (negative or zero
        when dominance holds everywhere).
    rounds:
        Number of compared rounds.
    """

    holds: bool
    violations: int
    worst_gap: float
    rounds: int

    def __str__(self) -> str:
        status = "holds" if self.holds else f"VIOLATED in {self.violations} rounds"
        return f"pointwise dominance over {self.rounds} rounds: {status} (worst gap {self.worst_gap:+g})"


def coupled_dominance_report(
    dominated: np.ndarray | list[float],
    dominating: np.ndarray | list[float],
) -> DominanceReport:
    """Check the pointwise inequality produced by the paper's couplings.

    Under the couplings of Lemmas 1 and 6 the inequality
    ``m^C(t) ≤ m^M(t)`` holds deterministically (surely, not just w.h.p.),
    so any violation in a correctly coupled run indicates an implementation
    bug. The report quantifies failures instead of raising so that tests
    can assert and diagnostics can print.
    """
    below = np.asarray(dominated, dtype=float)
    above = np.asarray(dominating, dtype=float)
    if below.shape != above.shape:
        raise ValueError(f"shape mismatch: {below.shape} vs {above.shape}")
    if below.size == 0:
        raise ValueError("need at least one round to compare")
    gaps = below - above
    violations = int(np.count_nonzero(gaps > 0))
    return DominanceReport(
        holds=violations == 0,
        violations=violations,
        worst_gap=float(gaps.max()),
        rounds=int(below.size),
    )
