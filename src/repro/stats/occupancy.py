"""Occupancy formulas for balls-into-bins rounds.

The analysis repeatedly uses the probability that a given bin receives no
ball when ``m`` balls are thrown uniformly into ``n`` bins:
``(1 − 1/n)^m ≤ e^{−m/n}``. These helpers evaluate the exact and asymptotic
versions and the implied expected numbers of empty/occupied bins, which the
theory module and several tests compare against simulation.
"""

from __future__ import annotations

import math

__all__ = ["miss_probability", "expected_empty_bins", "expected_occupied_bins"]


def miss_probability(n: int, balls: int, exact: bool = True) -> float:
    """Probability that a fixed bin receives none of ``balls`` throws.

    Parameters
    ----------
    n:
        Number of bins.
    balls:
        Number of balls thrown independently and uniformly.
    exact:
        If True (default) return ``(1 − 1/n)^balls``; otherwise the
        exponential upper bound ``e^{−balls/n}`` used throughout the proofs.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if balls < 0:
        raise ValueError(f"balls must be non-negative, got {balls}")
    if exact:
        if n == 1:
            return 0.0 if balls > 0 else 1.0
        return (1.0 - 1.0 / n) ** balls
    return math.exp(-balls / n)


def expected_empty_bins(n: int, balls: int, exact: bool = True) -> float:
    """Expected number of empty bins after throwing ``balls`` balls."""
    return n * miss_probability(n, balls, exact=exact)


def expected_occupied_bins(n: int, balls: int, exact: bool = True) -> float:
    """Expected number of bins that receive at least one ball.

    This equals the expected number of *successful deletion attempts* in a
    round of CAPPED(1, λ) in which ``balls`` balls are thrown (paper,
    Section III-A).
    """
    return n - expected_empty_bins(n, balls, exact=exact)
