"""Finite Markov-chain utilities.

The fluid-limit analysis reduces a bin of CAPPED(c, λ) to a (c+1)-state
Markov chain; the coupling argument reasons about hitting times; burn-in
questions are mixing-time questions. This module provides the small set of
exact finite-chain tools those uses need:

* :func:`stationary_distribution` — the stationary row vector, via direct
  linear solve (exact for the small chains here) with a power-iteration
  fallback for larger matrices.
* :func:`total_variation` — TV distance between distributions.
* :func:`mixing_time` — rounds until the worst-case TV distance to
  stationarity drops below ε, by explicit propagation.
* :func:`expected_hitting_times` — expected steps to reach a target state.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "validate_transition_matrix",
    "stationary_distribution",
    "total_variation",
    "mixing_time",
    "expected_hitting_times",
]


def validate_transition_matrix(matrix: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Check that ``matrix`` is row-stochastic; return it as float array."""
    transition = np.asarray(matrix, dtype=float)
    if transition.ndim != 2 or transition.shape[0] != transition.shape[1]:
        raise ValueError(f"transition matrix must be square, got {transition.shape}")
    if np.any(transition < -tol):
        raise ValueError("transition matrix has negative entries")
    row_sums = transition.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > tol):
        raise ValueError(f"rows must sum to 1, got sums {row_sums}")
    return transition


def stationary_distribution(matrix: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Stationary distribution π with π = πP.

    Solves the linear system ``(Pᵀ − I)π = 0, Σπ = 1`` directly; for
    singular corner cases (multiple closed classes) the solve still
    returns one valid stationary vector via least squares.
    """
    transition = validate_transition_matrix(matrix)
    size = transition.shape[0]
    # (P^T - I) pi = 0 with the normalisation row appended.
    system = np.vstack([transition.T - np.eye(size), np.ones((1, size))])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= tol:
        raise ValueError("failed to find a stationary distribution")
    return solution / total


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ``½·Σ|p − q|``."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def mixing_time(
    matrix: np.ndarray,
    epsilon: float = 0.25,
    max_steps: int = 100_000,
) -> int:
    """Steps until the worst-start TV distance to π drops below ``epsilon``.

    Propagates every point-mass start simultaneously (one matrix power per
    step); exact for the small chains this library builds. Raises if the
    chain has not mixed within ``max_steps`` (e.g. periodic chains).
    """
    transition = validate_transition_matrix(matrix)
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    pi = stationary_distribution(transition)
    size = transition.shape[0]
    states = np.eye(size)
    for step in range(1, max_steps + 1):
        states = states @ transition
        worst = max(total_variation(states[i], pi) for i in range(size))
        if worst < epsilon:
            return step
    raise ValueError(f"chain did not mix within {max_steps} steps")


def expected_hitting_times(matrix: np.ndarray, target: int) -> np.ndarray:
    """Expected steps to first reach ``target`` from every state.

    Solves the standard first-step equations ``h_i = 1 + Σ_j P_ij h_j``
    (``h_target = 0``). States that cannot reach the target yield ``inf``.
    """
    transition = validate_transition_matrix(matrix)
    size = transition.shape[0]
    if not 0 <= target < size:
        raise ValueError(f"target must be a state index in [0, {size}), got {target}")
    others = [i for i in range(size) if i != target]
    if not others:
        return np.zeros(1)
    reduced = transition[np.ix_(others, others)]
    system = np.eye(len(others)) - reduced
    ones = np.ones(len(others))
    try:
        solved = np.linalg.solve(system, ones)
    except np.linalg.LinAlgError:
        solved = np.full(len(others), np.inf)
    hitting = np.zeros(size)
    for index, state in enumerate(others):
        value = solved[index]
        hitting[state] = value if value >= 0 else np.inf
    return hitting
