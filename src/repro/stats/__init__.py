"""Probability and statistics substrate.

Implements the tail bounds the paper's analysis relies on (Appendix A),
streaming statistics collectors used by the simulation engine, confidence
intervals for the experiment harness, empirical stochastic-dominance tests
for validating the coupling lemmas, and occupancy (empty-bin) formulas.
"""

from repro.stats.association import (
    empty_bin_indicators,
    pairwise_covariance_report,
)
from repro.stats.dominance import (
    coupled_dominance_report,
    empirical_cdf,
    stochastically_dominates,
)
from repro.stats.intervals import bootstrap_ci, normal_ci
from repro.stats.markov import (
    expected_hitting_times,
    mixing_time,
    stationary_distribution,
    total_variation,
)
from repro.stats.occupancy import (
    expected_empty_bins,
    miss_probability,
    expected_occupied_bins,
)
from repro.stats.streaming import Histogram, P2Quantile, RunningStats
from repro.stats.tail_bounds import (
    binomial_domination_tail,
    chernoff_2exp_bound,
    chernoff_multiplicative_bound,
    empty_bins_concentration,
)

__all__ = [
    "chernoff_2exp_bound",
    "chernoff_multiplicative_bound",
    "empty_bins_concentration",
    "binomial_domination_tail",
    "RunningStats",
    "P2Quantile",
    "Histogram",
    "normal_ci",
    "bootstrap_ci",
    "empirical_cdf",
    "stochastically_dominates",
    "coupled_dominance_report",
    "pairwise_covariance_report",
    "empty_bin_indicators",
    "stationary_distribution",
    "total_variation",
    "mixing_time",
    "expected_hitting_times",
    "expected_empty_bins",
    "expected_occupied_bins",
    "miss_probability",
]
