"""repro — reproduction of *Infinite Balanced Allocation via Finite
Capacities* (Berenbrink, Friedetzky, Hahn, Hintze, Kaaser, Kling, Nagel;
ICDCS 2021).

The library implements the paper's CAPPED(c, λ) process, the coupled
analysis process MODCAPPED(c, λ), the theoretical bounds of Theorems 1 and
2, every baseline from the related work the paper compares against, and an
experiment harness regenerating the paper's full empirical evaluation
(Figures 4 and 5 plus the in-text claims).

Quickstart
----------
>>> from repro import CappedProcess, SimulationDriver
>>> process = CappedProcess(n=1024, capacity=2, lam=0.75, rng=42)
>>> result = SimulationDriver(burn_in=200, measure=300).run(process)
>>> result.normalized_pool < 2.0
True

See ``README.md`` for the architecture overview and ``EXPERIMENTS.md`` for
the paper-vs-measured comparison.
"""

from repro.checkpoint import CheckpointStore
from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.core.coupling import CoupledRun, run_coupled
from repro.core.modcapped import ModCappedProcess
from repro.core import theory
from repro.engine.driver import SimulationDriver, SimulationResult
from repro.engine.metrics import MetricsCollector, RoundRecord
from repro.errors import (
    CapacityExceeded,
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    ReproError,
    SimulationError,
)
from repro.processes.greedy import GreedyBatchProcess
from repro.rng import RngFactory

__version__ = "1.0.0"

__all__ = [
    "CappedProcess",
    "CheckpointStore",
    "ExactCappedSimulator",
    "ModCappedProcess",
    "CoupledRun",
    "run_coupled",
    "theory",
    "GreedyBatchProcess",
    "SimulationDriver",
    "SimulationResult",
    "MetricsCollector",
    "RoundRecord",
    "RngFactory",
    "ReproError",
    "ConfigurationError",
    "InvariantViolation",
    "CapacityExceeded",
    "SimulationError",
    "ExperimentError",
    "__version__",
]
