"""Shared-memory sharded CAPPED engine: one simulation across many cores.

The batched engine (:mod:`repro.kernels.batched`) parallelises a *sweep*
by fusing replicates; this module parallelises a *single* simulation by
partitioning the bins. :class:`ShardedCappedProcess` splits the ``n`` bins
into ``shards`` contiguous ranges; each shard resolves acceptance and the
FIFO deletion for its range with the whole-round serial kernel
(:func:`repro.kernels.round.resolve_capped_round_serial`), and the
coordinator merges the per-shard summaries (accepted counts, wait
histograms, load histograms) into the same :class:`RoundRecord` stream a
:class:`~repro.core.capped.CappedProcess` emits.

Why partitioning by *bin* works: acceptance in CAPPED(c, λ) is local to a
bin — ``min(c − ℓ_i, ν_i)`` oldest-first depends only on bin ``i``'s load
and its per-age-bucket request counts — and so is the FIFO deletion. Once
each thrown ball's bin choice is known, the round factorises exactly over
any partition of the bins; only the O(#buckets)-sized summaries need to
be merged. There is no approximation anywhere in this engine: every
configuration is covered by the bit-identity oracle against
``kernel="legacy"`` (see ``tests/kernels/test_sharded.py``).

**Shard RNG-substream contract.** Shard ``s`` of a run seeded ``seed``
draws its bin choices from ``RngFactory(seed).child(s).generator("capped")``
— the same derivation rule the sweep uses for replicates, so substreams
are statistically independent by `SeedSequence` spawning. Each round,
bucket ``b``'s ``m_b`` balls are split deterministically: shard ``s``
generates choices for ball indices ``[m_b·s/S, m_b·(s+1)/S)`` (integer
floor), drawn as one block per round, bucket-major. Consequences:

* the full choice vector of a round is a pure function of
  ``(seed, shards, pool history)`` — injection tests can replay it into a
  single-process ``kernel="legacy"`` run and demand identical records;
* ``shards=1`` consumes the stream ``RngFactory(seed).child(0)
  .generator("capped")`` exactly like a ``CappedProcess`` with that
  generator (the RNG-stream contract: block draws concatenate
  bit-identically to per-bucket draws), so a one-shard run *is* the
  unsharded trajectory, record for record;
* changing ``shards`` changes the realised trajectory (different
  substreams) but not the process law — every shard count samples the
  same CAPPED(c, λ) distribution.

**Backends.** ``backend="inline"`` resolves the shards sequentially in
the coordinator process — the reference implementation, used by the
equivalence tests and anywhere process startup is not worth it.
``backend="process"`` keeps ``shards`` persistent worker processes, the
full loads array and the per-round choice buffer in
:mod:`multiprocessing.shared_memory`, and runs one generate barrier and
one resolve barrier per round; workers write their slice of the loads in
place, so only O(#buckets + capacity)-sized summaries cross the pipes.
Both backends produce bit-identical trajectories (asserted in tests);
speedup requires real cores, and the bench grid records
``os.cpu_count()`` alongside its shard-scaling rows for that reason.

Checkpointing: :meth:`ShardedCappedProcess.get_state` snapshots the
merged bins, the pool, and every shard's bit-generator state; restoring
into an engine with the *same* shard count resumes the identical
trajectory (asserted kill-anywhere style in the tests). Snapshots are
backend-agnostic — a run recorded with workers restores inline and vice
versa.

Telemetry (when a session is active): per-shard resolve time lands in
``kernel_resolve_seconds{path="serial", shard=s}``, the coordinator adds
``shard_imbalance`` (slowest shard over mean shard seconds, 1.0 = perfect
balance) as a gauge, and rounds count into ``rounds_total{kernel=
"sharded"}`` via the standard :class:`PhaseClock`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.balls.bin_array import BinArray
from repro.balls.pool import AgePool
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.kernels.round import SerialRound, resolve_capped_round_serial
from repro.rng import RngFactory
from repro.telemetry.runtime import PhaseClock, current as _telemetry_current
from repro.workloads.arrivals import DeterministicArrivals

__all__ = ["ShardedCappedProcess", "shard_ranges", "split_bucket"]

_EMPTY = np.zeros(0, dtype=np.int64)


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous bin ranges ``[lo, hi)`` owned by each shard.

    The split is the standard balanced one: shard ``s`` owns
    ``[n·s/S, n·(s+1)/S)`` (integer floor), so range sizes differ by at
    most one bin.
    """
    return [(n * s // shards, n * (s + 1) // shards) for s in range(shards)]


def split_bucket(count: int, shards: int) -> list[tuple[int, int]]:
    """Deterministic per-shard slice ``[lo, hi)`` of one bucket's balls.

    Shard ``s`` *generates* choices for ball indices
    ``[count·s/S, count·(s+1)/S)`` of the bucket — the substream contract
    the docstring above and ``docs/kernels.md`` document. (Which shard
    *resolves* a ball is decided by the drawn bin, not by this split.)
    """
    return [(count * s // shards, count * (s + 1) // shards) for s in range(shards)]


def _resolve_shard(
    loads_slice: np.ndarray,
    capacity_limit,
    lo: int,
    hi: int,
    bucket_keys: list[np.ndarray],
    bucket_ages: list[int],
    hist_size: int,
    initial_hist: list[int] | None,
) -> SerialRound:
    """Resolve one shard's range: filter keys to ``[lo, hi)``, run serially.

    ``bucket_keys`` holds the round's full per-bucket choice arrays (bin
    indices over all ``n`` bins, priority order); the shard keeps the keys
    landing in its range, rebases them to range-local indices, and hands
    them to the whole-round serial kernel. Shared by both backends — this
    is the single definition of what a shard computes.
    """
    local_keys: list[np.ndarray] = []
    local_counts: list[int] = []
    for keys in bucket_keys:
        if keys.size:
            mine = keys[(keys >= lo) & (keys < hi)]
            if lo:
                mine = mine - lo
            local_keys.append(mine)
            local_counts.append(mine.size)
        else:
            local_keys.append(keys)
            local_counts.append(0)
    merged = np.concatenate(local_keys) if len(local_keys) > 1 else local_keys[0]
    return resolve_capped_round_serial(
        loads_slice,
        capacity_limit,
        merged,
        local_counts,
        bucket_ages,
        hist_size,
        initial_hist=initial_hist,
    )


class ShardedCappedProcess:
    """CAPPED(c, λ) with bins partitioned across shards (see module docs).

    Parameters
    ----------
    n:
        Number of bins; must be at least ``shards``.
    capacity:
        Buffer size ``c`` — a positive int or a per-bin array. Unbounded
        bins (``None``) are not shardable here: the serial kernel's
        histogram bookkeeping requires finite capacities, which is also
        the paper's regime of interest.
    lam:
        Injection rate; ``λn`` per round via the paper's deterministic
        arrival schedule (stochastic arrival processes would consume the
        shard substreams unpredictably and are not supported).
    seed:
        Root seed *or* an :class:`~repro.rng.RngFactory`; shard ``s``
        draws from ``factory.child(s).generator("capped")``.
    shards:
        Number of bin ranges (and, with the process backend, workers).
    backend:
        ``"inline"`` (sequential reference, default) or ``"process"``
        (persistent shared-memory workers).
    initial_pool / acceptance_order:
        As for :class:`~repro.core.capped.CappedProcess`.
    record_choices:
        Keep each round's assembled choice vector in ``last_choices``
        (priority-major, the exact vector a single-process run would
        consume) — the hook the legacy-oracle tests replay from.

    Examples
    --------
    >>> process = ShardedCappedProcess(n=64, capacity=2, lam=0.75, seed=1, shards=4)
    >>> record = process.step()
    >>> record.arrivals
    48
    """

    def __init__(
        self,
        n: int,
        capacity,
        lam: float,
        seed=0,
        shards: int = 2,
        backend: str = "inline",
        initial_pool: int = 0,
        acceptance_order: str = "oldest",
        record_choices: bool = False,
    ) -> None:
        if capacity is None:
            raise ConfigurationError(
                "sharded engine requires finite capacities (capacity=None is "
                "the unbounded GREEDY regime; use CappedProcess for it)"
            )
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if n < shards:
            raise ConfigurationError(f"need at least one bin per shard, got n={n} < {shards}")
        if backend not in ("inline", "process"):
            raise ConfigurationError(f"backend must be 'inline' or 'process', got {backend!r}")
        if acceptance_order not in ("oldest", "youngest"):
            raise ConfigurationError(
                f"acceptance_order must be 'oldest' or 'youngest', got {acceptance_order!r}"
            )
        if initial_pool < 0:
            raise ConfigurationError(f"initial_pool must be non-negative, got {initial_pool}")
        self.n = n
        self.capacity = capacity
        self.lam = lam
        self.shards = shards
        self.backend = backend
        self.acceptance_order = acceptance_order
        self.record_choices = record_choices
        self.last_choices: np.ndarray | None = None
        factory = seed if isinstance(seed, RngFactory) else RngFactory(seed=int(seed))
        self.seed = factory.seed
        self.arrivals = DeterministicArrivals(n=n, lam=lam)
        self.pool = AgePool()
        if initial_pool:
            self.pool.add(0, initial_pool)
        self.bins = BinArray(n, capacity)
        self.round = 0
        self.ranges = shard_ranges(n, shards)
        # Per-shard load-histogram carry (the serial kernel's next_hist
        # feedback), maintained by the coordinator because the global
        # BinArray cache cannot be split back into ranges.
        self._shard_hists: list[list[int] | None] = [None] * shards
        self._rngs = [factory.child(s).generator("capped") for s in range(shards)]
        self._workers = None
        if backend == "process":
            from repro.kernels.sharded_workers import WorkerPool

            self._workers = WorkerPool(self)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes (no-op for the inline backend)."""
        if self._workers is not None:
            self._workers.close()
            self._workers = None

    def __enter__(self) -> "ShardedCappedProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pool_size(self) -> int:
        """Current pool size ``m(t)``."""
        return self.pool.size

    # -- the round ---------------------------------------------------------

    def _bucket_choices(self, counts: list[int], choices: np.ndarray | None):
        """Per-bucket full choice arrays for this round (inline backend).

        Without injected ``choices`` each shard's generator contributes its
        deterministic slice of every bucket, drawn as one block per shard
        (bucket-major within the block). With injection the vector is
        split by bucket only — the substreams stay untouched, exactly like
        injecting into a single-process run.
        """
        if choices is not None:
            choices = np.asarray(choices, dtype=np.int64)
            bucket_keys = []
            offset = 0
            for count in counts:
                bucket_keys.append(choices[offset : offset + count])
                offset += count
            if self.record_choices:
                self.last_choices = choices.copy()
            return bucket_keys

        splits = [split_bucket(count, self.shards) for count in counts]
        blocks = []
        for s in range(self.shards):
            total = sum(split[s][1] - split[s][0] for split in splits)
            blocks.append(self._rngs[s].integers(0, self.n, size=total))
        bucket_keys = []
        cursors = [0] * self.shards
        for b, count in enumerate(counts):
            parts = []
            for s in range(self.shards):
                lo, hi = splits[b][s]
                size = hi - lo
                if size:
                    parts.append(blocks[s][cursors[s] : cursors[s] + size])
                    cursors[s] += size
            if not parts:
                bucket_keys.append(_EMPTY)
            elif len(parts) == 1:
                bucket_keys.append(parts[0])
            else:
                bucket_keys.append(np.concatenate(parts))
        if self.record_choices:
            self.last_choices = np.concatenate(bucket_keys) if bucket_keys else _EMPTY.copy()
        return bucket_keys

    def step(self, choices: np.ndarray | None = None) -> RoundRecord:
        """Advance one round; the record matches an unsharded run's shape."""
        self.round += 1
        t = self.round
        tel = _telemetry_current()
        clock = PhaseClock(tel, kernel="sharded") if tel is not None else None

        generated = self.arrivals.arrivals(t, self._rngs[0])
        self.pool.add(t, generated)
        thrown = self.pool.size
        if choices is not None and len(choices) != thrown:
            raise ConfigurationError(
                f"injected choices must cover all {thrown} thrown balls, got {len(choices)}"
            )

        if thrown == 0:
            # Nothing thrown: the round is pure FIFO deletion.
            if self.record_choices:
                self.last_choices = _EMPTY.copy()
            self._shard_hists = [None] * self.shards
            deleted = self.bins.delete_one_each()
            max_load = int(self.bins.loads.max()) if self.n else 0
            if clock is not None:
                clock.lap("delete")
                clock.finish()
            return RoundRecord(
                round=t,
                arrivals=generated,
                thrown=0,
                accepted=0,
                deleted=deleted,
                pool_size=self.pool.size,
                total_load=self.bins.total_load,
                max_load=max_load,
                wait_values=_EMPTY,
                wait_counts=_EMPTY,
            )

        counts = self.pool.counts()
        ages = [t - label for label in self.pool.labels()]
        # freeze_down keeps down bins eligible: their ceiling clamps to the
        # current load so they accept nothing, and the deletion the kernel
        # unconditionally performs on them is undone below (down bins are
        # frozen; draining bins keep serving and need no correction).
        limit = self.bins.serial_round_limit(allow_unit_capacity=True, freeze_down=True)
        if limit is None:
            raise ConfigurationError(
                "sharded engine cannot resolve this round: unbounded bins "
                "(use CappedProcess for the GREEDY regime)"
            )
        capacity_limit, hist_size = limit
        down_fix = _EMPTY
        if self.bins.down_count:
            down_idx = np.flatnonzero(self.bins.down)
            # Pre-round loads: down bins accept nothing, so these are also
            # their loads at deletion time inside the kernel.
            down_fix = down_idx[self.bins.loads[down_idx] > 0]
            fix_loads = self.bins.loads[down_fix].copy()
        scalar_limit = np.isscalar(capacity_limit)
        if not self.bins.hist_carry_intact:
            # Something outside the round loop mutated the loads since our
            # last commit (a fault wiping buffers, a capacity change): the
            # per-shard histogram carries describe pre-mutation loads and
            # feeding them to the kernel would corrupt its deletions.
            self._shard_hists = [None] * self.shards
        if self._shard_hists[0] is not None and len(self._shard_hists[0]) != hist_size:
            self._shard_hists = [None] * self.shards
        reversed_priority = self.acceptance_order == "youngest" and len(counts) > 1

        if self._workers is not None:
            # Choices live in shared memory: workers draw and scatter their
            # slices (or the coordinator stages an injected vector), then
            # every worker reads the whole vector to filter its bin range.
            # Only bucket spans and O(hist)-sized summaries cross the pipes.
            spans = self._workers.stage_choices(counts, choices)
            if self.record_choices:
                self.last_choices = self._workers.read_choices(thrown)
            if clock is not None:
                clock.lap("throw")
            if reversed_priority:
                spans = spans[::-1]
                ages = ages[::-1]
            results, shard_seconds = self._workers.resolve(
                spans, ages, capacity_limit, hist_size, self._shard_hists
            )
        else:
            bucket_keys = self._bucket_choices(counts, choices)
            if clock is not None:
                clock.lap("throw")
            if reversed_priority:
                bucket_keys = bucket_keys[::-1]
                ages = ages[::-1]
            results = []
            shard_seconds = []
            for s, (lo, hi) in enumerate(self.ranges):
                start = time.perf_counter() if tel is not None else 0.0
                res = _resolve_shard(
                    self.bins.loads[lo:hi],
                    capacity_limit if scalar_limit else capacity_limit[lo:hi],
                    lo,
                    hi,
                    bucket_keys,
                    ages,
                    hist_size,
                    self._shard_hists[s],
                )
                self.bins.loads[lo:hi] = res.new_loads
                results.append(res)
                shard_seconds.append(time.perf_counter() - start)
        if tel is not None:
            for s, seconds in enumerate(shard_seconds):
                tel.observe("kernel_resolve_seconds", seconds, path="serial", shard=s)
            mean = sum(shard_seconds) / len(shard_seconds)
            if mean > 0:
                tel.set_gauge("shard_imbalance", max(shard_seconds) / mean)

        if down_fix.size:
            # Undo the kernel's FIFO deletion on non-empty down bins: an
            # outage freezes the queue. Loads are restored in place and
            # each owning shard's summary (deleted count, post-round
            # histogram, max load) is corrected before the merge so the
            # carry fed back as next round's initial_hist stays exact.
            self.bins.loads[down_fix] = fix_loads
            for s, (lo, hi) in enumerate(self.ranges):
                in_range = (down_fix >= lo) & (down_fix < hi)
                if not in_range.any():
                    continue
                res = results[s]
                restored = fix_loads[in_range]
                res.deleted -= int(in_range.sum())
                for load in restored.tolist():
                    res.next_hist[load - 1] -= 1
                    res.next_hist[load] += 1
                top = int(restored.max())
                if top > res.max_load:
                    res.max_load = top

        merged = self._merge(results)
        accepted_per_bucket = merged.accepted_per_bucket
        if reversed_priority:
            accepted_per_bucket = accepted_per_bucket[::-1]
        if merged.accepted_total:
            self.pool.remove_bulk(accepted_per_bucket)
        self.bins.commit_round(merged)
        if clock is not None:
            clock.lap("accept")

        record = RoundRecord(
            round=t,
            arrivals=generated,
            thrown=thrown,
            accepted=merged.accepted_total,
            deleted=merged.deleted,
            pool_size=self.pool.size,
            total_load=self.bins.total_load,
            max_load=merged.max_load,
            wait_values=merged.wait_values,
            wait_counts=merged.wait_counts,
        )
        if clock is not None:
            clock.lap("collect")
            clock.finish()
        return record

    def _merge(self, results: list[SerialRound]) -> SerialRound:
        """Sum the per-shard summaries into one whole-array SerialRound.

        Loads were already written in place per range, so ``new_loads`` is
        the bins' own array; histograms and per-bucket counts add
        elementwise (a bincount over a disjoint union is the sum of the
        parts); extrema merge by max. The per-shard ``next_hist`` lists
        are retained for the next round's ``initial_hist`` feedback.
        """
        first = results[0]
        accepted_per_bucket = list(first.accepted_per_bucket)
        accepted_total = first.accepted_total
        deleted = first.deleted
        max_load = first.max_load
        peak_load = first.peak_load
        tally: dict[int, int] = dict(zip(first.wait_values.tolist(), first.wait_counts.tolist()))
        next_hist = list(first.next_hist)
        self._shard_hists[0] = first.next_hist
        for s in range(1, len(results)):
            res = results[s]
            self._shard_hists[s] = res.next_hist
            for b, taken in enumerate(res.accepted_per_bucket):
                accepted_per_bucket[b] += taken
            accepted_total += res.accepted_total
            deleted += res.deleted
            if res.max_load > max_load:
                max_load = res.max_load
            if res.peak_load > peak_load:
                peak_load = res.peak_load
            for value, count in zip(res.wait_values.tolist(), res.wait_counts.tolist()):
                tally[value] = tally.get(value, 0) + count
            for k, v in enumerate(res.next_hist):
                next_hist[k] += v
        wait_values = np.array(sorted(tally), dtype=np.int64)
        wait_counts = np.array([tally[v] for v in wait_values.tolist()], dtype=np.int64)
        return SerialRound(
            new_loads=self.bins.loads,
            accepted_per_bucket=accepted_per_bucket,
            accepted_total=accepted_total,
            deleted=deleted,
            max_load=max_load,
            peak_load=peak_load,
            wait_values=wait_values,
            wait_counts=wait_counts,
            next_hist=next_hist,
        )

    # -- checkpoint / invariants -------------------------------------------

    def check_invariants(self) -> None:
        """Verify pool, bins, and per-shard histogram-carry consistency."""
        self.pool.check_invariants()
        self.bins.check_invariants()
        oldest = self.pool.oldest_label
        if oldest is not None and oldest > self.round:
            raise InvariantViolation(
                f"pool contains balls from future round {oldest} (now {self.round})"
            )
        for s, (lo, hi) in enumerate(self.ranges):
            hist = self._shard_hists[s]
            if hist is None:
                continue
            expected = np.bincount(self.bins.loads[lo:hi], minlength=len(hist)).tolist()
            if list(hist) != expected:
                raise InvariantViolation(f"shard {s} histogram carry out of sync with loads")

    def get_state(self) -> dict:
        """Snapshot for bit-identical restore (same ``shards`` required)."""
        if self._workers is not None:
            rng_states = self._workers.get_rng_states()
        else:
            rng_states = [rng.bit_generator.state for rng in self._rngs]
        return {
            "round": self.round,
            "shards": self.shards,
            "pool": self.pool.get_state(),
            "bins": self.bins.get_state(),
            "shard_rngs": rng_states,
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (same n/c/λ/shards engine)."""
        if int(state["shards"]) != self.shards:
            raise ConfigurationError(
                f"snapshot was taken with shards={state['shards']}, "
                f"this engine has shards={self.shards}"
            )
        self.round = int(state["round"])
        self.pool.set_state(state["pool"])
        self.bins.set_state(state["bins"])
        if self._workers is not None:
            self._workers.set_rng_states(state["shard_rngs"])
            self._workers.reload_loads()
        else:
            for rng, saved in zip(self._rngs, state["shard_rngs"]):
                rng.bit_generator.state = saved
        self._shard_hists = [None] * self.shards
        self.check_invariants()
