"""The fused single-pass CAPPED acceptance kernel.

The legacy round step of :class:`~repro.core.capped.CappedProcess` walks
the age buckets oldest-first and pays ``np.bincount(minlength=n)``, a
``minimum`` against free slots, and a full ``accept()`` pass *per bucket*
— several full O(n) element passes per age bucket per round, plus a
Python round-trip each. The fused kernel resolves capped acceptance for
*all* age buckets in one shot, with no per-ball sorting and no Python
loop over bins.

The key observation is exchangeability: balls generated in the same round
are interchangeable, so acceptance never needs per-ball identity — only
the *count* of requests per (bin, age bucket). Two regimes follow:

**Unit-take fast path** (``free.max() <= 1``, which always holds for
``c = 1`` — the paper's flagship configuration): every bin accepts at
most one ball, namely its highest-priority requester. A descending-
priority sweep of slice scatters (``winner[keys_of_bucket_b] = b``,
oldest bucket written last) leaves each touched bin holding its winning
bucket — O(#thrown) scattered writes and a handful of O(n) mask passes,
with no request counting at all.

**Counting general path**: one composite ``bincount`` over
``bucket·n + key`` counts every (bucket, key) request pair at once —
a counting sort of the thrown balls by age bucket and key without ever
sorting per ball. A running row clip ``cum_b = min(cum_{b-1} + R_b,
free)`` then applies the greedy oldest-first rule as K contiguous
vector passes (the winner-map idea generalized past ``free <= 1``:
instead of one winning bucket per key, each key holds a clipped
cumulative *count* per bucket). There is no per-bucket Python
round-trip through bin state and no budget bookkeeping — the clip is
the budget.

Waiting times never need per-ball expansion on this path: bucket
``b``'s accepted balls at key ``k`` occupy the queue-position range
``[loads_k + cum_{b-1,k}, loads_k + cum_{b,k})``, so the per-position
occupancy of bucket ``b`` is the difference of two *position
histograms* ``bincount(loads + cum_b)`` — and those histograms
telescope across buckets (bucket ``b``'s end positions are bucket
``b+1``'s starts), K+1 bincounts total. Shifting each bucket's
occupancy by its age and summing gives the wait histogram directly;
empty runs cancel between adjacent histograms, so nothing is ever
scanned for non-zeros. Run extraction (``need_runs=True`` callers:
the batched engine, d-choice) gathers runs from the same cumulative
rows. A ball at position ``p`` waits ``age_b + p`` rounds (see
:mod:`repro.balls.bin_array` for the position identity); expanded
waits use :func:`positional_waits`.

The kernel never mutates its inputs; callers commit the result through
``BinArray.commit_accepted`` and ``AgePool.remove_bulk`` (one call each
per round).

Keys need not be bin indices: the batched engine passes composite keys
``replicate·n + bin`` over a flat ``(R·n,)`` bin array, resolving R
independent replicates in the same pass (buckets of different replicates
share the label axis; keys of different replicates never collide).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.telemetry.runtime import current as _telemetry_current

__all__ = [
    "ResolvedRound",
    "SerialRound",
    "positional_waits",
    "resolve_capped_round",
    "resolve_capped_round_serial",
    "wait_histogram",
]

_EMPTY = np.zeros(0, dtype=np.int64)


def wait_histogram(waits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted (values, counts) of a waiting-time sample.

    Equivalent to ``np.unique(waits, return_counts=True)`` but via one
    bincount — waits are small non-negative ints, so counting beats the
    O(m log m) sort for the large per-round samples near λ → 1.
    """
    if not waits.size:
        return _EMPTY, _EMPTY
    histogram = np.bincount(waits)
    values = np.flatnonzero(histogram)
    return values, histogram[values]


def positional_waits(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand per-run (start, length) pairs into individual waiting times.

    Run ``i`` contributes the values ``starts[i], starts[i]+1, ...,
    starts[i]+lengths[i]−1`` — one per accepted ball, in queue order.
    """
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY
    repeated_starts = np.repeat(starts, lengths)
    cumulative = np.cumsum(lengths) - lengths
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
    return repeated_starts + offsets


@dataclass(slots=True)
class ResolvedRound:
    """Outcome of one fused acceptance pass.

    Acceptance is reported per *run* — a maximal group of accepted balls
    sharing a (key, priority bucket) — because runs are what both commit
    targets need: per-key totals for the bin array, per-bucket totals for
    the pool, and the run expansion for waits. Runs are ordered by key
    ascending (ties by bucket priority), matching the layout of ``waits``.

    Array dtypes are an implementation detail: the unit-take path returns
    the narrowest representation that holds the values (boolean per-key
    counts, int8 buckets, a broadcast view of ones for the lengths), so
    consume the fields numerically rather than relying on ``int64`` or on
    writability.

    Attributes
    ----------
    accepted_per_key:
        ``(N,)`` — balls accepted by each key, ``min(total requests, free)``.
    accepted_per_bucket:
        ``(K,)`` — balls accepted from each priority bucket (bucket 0 is
        highest priority), ready for ``AgePool.remove_bulk``.
    run_keys:
        Key of each non-empty acceptance run, ascending.
    run_buckets:
        Priority bucket of each run, aligned with ``run_keys``.
    run_lengths:
        Balls in each run, aligned with ``run_keys``.
    waits:
        Waiting time of every accepted ball (``age + queue position``),
        grouped by run.
    accepted_total:
        Total balls accepted.
    wait_hist:
        Optional precomputed ``(values, counts)`` wait histogram,
        equivalent to ``wait_histogram(waits)``. Set whenever the caller
        passed ``need_runs=False`` and the path can produce the histogram
        without expanding per-ball arrays: always on the counting path
        (telescoped position histograms), and on the unit-take path when
        every load is zero (each accepted ball then waits exactly its
        bucket's age). ``run_*`` and ``waits`` come back empty in that
        case. ``None`` means histogram ``waits`` yourself.
    """

    accepted_per_key: np.ndarray
    accepted_per_bucket: np.ndarray
    run_keys: np.ndarray
    run_buckets: np.ndarray
    run_lengths: np.ndarray
    waits: np.ndarray
    accepted_total: int
    wait_hist: tuple[np.ndarray, np.ndarray] | None = None


def _resolve_unit_take(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    need_runs: bool = True,
) -> ResolvedRound:
    """Fast path for ``free <= 1`` everywhere (always true at c = 1).

    Each key accepts at most one ball: the one from its highest-priority
    requesting bucket. A descending-priority sweep of slice scatters
    (oldest bucket written last, so it wins) finds that bucket per key
    without counting requests at all.
    """
    num_keys = free.size
    num_buckets = bucket_counts.size
    # The first-touch scatter is bandwidth-bound; a byte-wide winner array
    # cuts its traffic 8× (the live bucket count fits easily — K ~ 7).
    dtype = np.int8 if num_buckets < 127 else np.int64
    winner = np.full(num_keys, num_buckets, dtype=dtype)
    bounds = np.cumsum(bucket_counts)
    for b in range(num_buckets - 1, -1, -1):
        winner[ball_keys[bounds[b] - bucket_counts[b] : bounds[b]]] = b

    # At homogeneous c = 1 every bin is emptied by the end-of-round
    # deletion, so at round start no bin is full and every load is zero;
    # these checks are cheap single passes that skip the full-bin masking
    # and the per-run load gather in that (dominant) case. Neither is
    # assumed: heterogeneous, degraded, or down bins take the full
    # branches.
    if int(free.min()) <= 0:
        # Evict full/down keys from the winner map itself so the mask
        # and the per-bucket counts below both see the clipped outcome.
        winner[free <= 0] = num_buckets
    accepted_mask = winner < num_buckets
    accepted_per_bucket = np.bincount(winner, minlength=num_buckets + 1)[:num_buckets]
    accepted_total = int(accepted_per_bucket.sum())

    if not need_runs and not loads.any():
        # Lean mode for serial consumers, who only ever histogram the
        # waits: with every load zero each accepted ball waits exactly
        # its bucket's age, so the histogram *is* the per-bucket totals
        # and no per-ball array (runs or waits) need exist at all. This
        # skips three O(#accepted) passes per round.
        live = np.flatnonzero(accepted_per_bucket)
        ages_live = bucket_ages[live]
        order = np.argsort(ages_live)
        return ResolvedRound(
            accepted_per_key=accepted_mask,
            accepted_per_bucket=accepted_per_bucket,
            run_keys=_EMPTY,
            run_buckets=_EMPTY,
            run_lengths=_EMPTY,
            waits=_EMPTY,
            accepted_total=accepted_total,
            wait_hist=(ages_live[order], accepted_per_bucket[live][order]),
        )

    run_keys = np.flatnonzero(accepted_mask)
    # int64 immediately: every later use (age gather, bucket bincount)
    # indexes with these, and fancy indexing converts narrow index arrays
    # to intp internally — one explicit widening beats two hidden ones.
    run_buckets = winner[run_keys].astype(np.int64)
    # Runs all have length 1, so each wait is just its run's start. The
    # other run arrays stay narrow (bool per-key counts, a broadcast
    # length-1 view for the lengths) — every consumer uses them
    # numerically, and the avoided widening copies are a measurable slice
    # of the per-round budget at n = 2^15.
    waits = bucket_ages[run_buckets]
    if loads.any():
        waits = waits + loads[run_keys]
    return ResolvedRound(
        accepted_per_key=accepted_mask,
        accepted_per_bucket=accepted_per_bucket,
        run_keys=run_keys,
        run_buckets=run_buckets,
        run_lengths=np.broadcast_to(np.int64(1), (run_keys.size,)),
        waits=waits,
        accepted_total=accepted_total,
    )


def _resolve_counting(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    sort_runs: bool,
    need_runs: bool,
) -> ResolvedRound:
    """General path: counting sort over (bucket, key) plus a running clip.

    One composite ``bincount`` over ``bucket·num_keys + key`` produces the
    full request matrix ``R`` (counting-sorting the balls by age bucket
    and key); the greedy oldest-first rule is then K contiguous row
    passes ``cum_b = min(cum_{b-1} + R_b, free)`` clipped in place over
    the same matrix. ``cum_b`` is element-wise non-decreasing in ``b``
    (``cum_{b-1} <= free`` always, so adding ``R_b >= 0`` and re-clipping
    can only grow it), which makes ``cum`` exactly the per-key cumulative
    acceptance through bucket ``b`` — the last row *is* the per-key
    acceptance, no budget bookkeeping required.

    With ``need_runs=False`` (the serial simulators) the wait histogram
    comes from telescoped position histograms: bucket ``b``'s accepted
    balls at key ``k`` sit at queue positions ``[loads_k + cum_{b-1,k},
    loads_k + cum_{b,k})``, so ``H_b = bincount(loads + cum_b)`` gives
    bucket ``b``'s end positions *and* bucket ``b+1``'s start positions.
    ``cumsum(H_{b-1} − H_b)`` is then bucket ``b``'s per-position
    occupancy (keys with no acceptance in ``b`` contribute equally to
    both histograms and cancel), and shifting by ``age_b`` accumulates
    straight into the wait histogram — no per-ball array, no non-zero
    scan, and every heavy pass is a contiguous O(num_keys) operation.
    """
    num_keys = free.size
    num_buckets = bucket_counts.size
    if num_buckets == 1:
        cum = np.bincount(ball_keys, minlength=num_keys).reshape(1, num_keys)
    else:
        offsets = np.repeat(np.arange(num_buckets, dtype=np.int64) * num_keys, bucket_counts)
        cum = np.bincount(ball_keys + offsets, minlength=num_buckets * num_keys).reshape(
            num_buckets, num_keys
        )
    np.minimum(cum[0], free, out=cum[0])
    for b in range(1, num_buckets):
        np.add(cum[b], cum[b - 1], out=cum[b])
        np.minimum(cum[b], free, out=cum[b])
    accepted_per_key = cum[num_buckets - 1]

    if not need_runs:
        # Telescoped position histograms: hists[b] counts the start
        # positions of bucket b and the end positions of bucket b−1.
        pos = np.empty(num_keys, dtype=np.int64)
        hists = [np.bincount(loads)]
        for b in range(num_buckets):
            np.add(cum[b], loads, out=pos)
            hists.append(np.bincount(pos))
        width = max(h.size for h in hists)
        wait_hist = np.zeros(int(bucket_ages.max()) + width, dtype=np.int64)
        accepted_per_bucket = np.empty(num_buckets, dtype=np.int64)
        accepted_total = 0
        for b in range(num_buckets):
            h_start, h_end = hists[b], hists[b + 1]
            occupancy = np.zeros(max(h_start.size, h_end.size), dtype=np.int64)
            occupancy[: h_start.size] += h_start
            occupancy[: h_end.size] -= h_end
            np.cumsum(occupancy, out=occupancy)
            taken = int(occupancy.sum())
            accepted_per_bucket[b] = taken
            accepted_total += taken
            if taken:
                age = int(bucket_ages[b])
                wait_hist[age : age + occupancy.size] += occupancy
        values = np.flatnonzero(wait_hist)
        return ResolvedRound(
            accepted_per_key=accepted_per_key,
            accepted_per_bucket=accepted_per_bucket,
            run_keys=_EMPTY,
            run_buckets=_EMPTY,
            run_lengths=_EMPTY,
            waits=_EMPTY,
            accepted_total=accepted_total,
            wait_hist=(values, wait_hist[values]),
        )

    key_parts: list[np.ndarray] = []
    bucket_parts: list[int] = []
    length_parts: list[np.ndarray] = []
    start_parts: list[np.ndarray] = []
    accepted_per_bucket = np.zeros(num_buckets, dtype=np.int64)
    for b in range(num_buckets):
        take = cum[b] if b == 0 else cum[b] - cum[b - 1]
        keys_taken = np.flatnonzero(take)
        if keys_taken.size == 0:
            continue
        lengths = take[keys_taken]
        prior = loads[keys_taken]
        if b:
            prior = prior + cum[b - 1][keys_taken]
        start_parts.append(bucket_ages[b] + prior)
        key_parts.append(keys_taken)
        bucket_parts.append(b)
        length_parts.append(lengths)
        accepted_per_bucket[b] = int(lengths.sum())

    if not key_parts:
        return ResolvedRound(
            accepted_per_key,
            accepted_per_bucket,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            0,
        )

    run_keys = np.concatenate(key_parts)
    run_buckets = np.repeat(
        np.asarray(bucket_parts, dtype=np.int64),
        np.asarray([part.size for part in key_parts], dtype=np.int64),
    )
    run_lengths = np.concatenate(length_parts)
    starts = np.concatenate(start_parts)
    if sort_runs and len(key_parts) > 1:
        # Each bucket's runs are already key-ascending; a stable sort over
        # the (few) runs merges them into key-major order for callers that
        # asked for it.
        order = np.argsort(run_keys, kind="stable")
        run_keys = run_keys[order]
        run_buckets = run_buckets[order]
        run_lengths = run_lengths[order]
        starts = starts[order]
    return ResolvedRound(
        accepted_per_key=accepted_per_key,
        accepted_per_bucket=accepted_per_bucket,
        run_keys=run_keys,
        run_buckets=run_buckets,
        run_lengths=run_lengths,
        waits=positional_waits(starts, run_lengths),
        accepted_total=int(accepted_per_bucket.sum()),
    )


def resolve_capped_round(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    sort_runs: bool = True,
    need_runs: bool = True,
) -> ResolvedRound:
    """Resolve capped acceptance for all thrown balls in one pass.

    Parameters
    ----------
    free:
        Per-key free slots (``BinArray.free_slots()``); not mutated.
    loads:
        Per-key loads at the start of the round; not mutated.
    ball_keys:
        One key per thrown ball (bin index, or composite
        ``replicate·n + bin`` for the batched engine), laid out in
        priority-major order: the ``bucket_counts[0]`` balls of the
        highest-priority bucket first, then bucket 1, and so on. Ball
        order *within* a bucket never matters (exchangeability).
    bucket_counts:
        ``(K,)`` — balls per priority bucket. Bucket 0 is accepted first:
        oldest-first callers pass age buckets oldest-first, the
        youngest-first ablation passes them reversed.
    bucket_ages:
        ``(K,)`` — age ``t − label`` of each priority bucket's balls.
    sort_runs:
        When True (default), runs (and the aligned waits) are returned in
        key-ascending order — required by the batched engine's
        per-replicate splitting. Callers that only histogram the waits
        (the serial processes) pass False and skip the merge sort; run
        order is then bucket-major.
    need_runs:
        When False, the caller promises not to read the ``run_*`` or
        ``waits`` fields *if* ``wait_hist`` comes back set — which lets
        both paths skip materialising per-ball arrays (see
        :class:`ResolvedRound.wait_hist`): the counting path always
        returns the histogram directly from its telescoped position
        histograms, and the unit-take path does when every load is zero
        (the dominant c = 1 case; that shortcut additionally requires
        distinct ``bucket_ages``, true by construction for age buckets).
        With ``wait_hist=None`` the result is fully populated regardless,
        so consumers branch on the field, not on the flag they passed.

    Returns
    -------
    ResolvedRound
        Acceptance counts and waiting times. Loads and pool state are
        *not* updated — callers commit via ``BinArray.commit_accepted``
        and ``AgePool.remove_bulk``.
    """
    num_buckets = bucket_counts.size
    if ball_keys.size == 0 or num_buckets == 0:
        return ResolvedRound(
            np.zeros(free.size, dtype=np.int64),
            np.zeros(num_buckets, dtype=np.int64),
            _EMPTY,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            0,
        )
    # Dispatch: unit-take covers c = 1 exactly and saturated heterogeneous
    # rounds opportunistically; the sentinel for unbounded bins (2**62)
    # keeps those on the general path.
    unit_take = int(free.max()) <= 1
    # Telemetry (path counts + resolve timing) is read-only and costs one
    # global read when disabled; it lands in a *separate* metric from the
    # phase laps so attribution never double-counts the accept phase.
    tel = _telemetry_current()
    if tel is None:
        if unit_take:
            return _resolve_unit_take(free, loads, ball_keys, bucket_counts, bucket_ages, need_runs)
        return _resolve_counting(
            free, loads, ball_keys, bucket_counts, bucket_ages, sort_runs, need_runs
        )
    start = time.perf_counter()
    if unit_take:
        resolved = _resolve_unit_take(free, loads, ball_keys, bucket_counts, bucket_ages, need_runs)
    else:
        resolved = _resolve_counting(
            free, loads, ball_keys, bucket_counts, bucket_ages, sort_runs, need_runs
        )
    path = "unit_take" if unit_take else "counting"
    tel.inc("kernel_dispatch_total", path=path)
    tel.observe("kernel_resolve_seconds", time.perf_counter() - start, path=path)
    return resolved


# Buckets at most this large are resolved ball-by-ball in scalar Python:
# below a couple dozen balls even a single ``np.unique`` call costs more
# than the whole loop. Equilibrium pools put their oldest buckets here.
_TINY_BUCKET = 24


@dataclass(slots=True)
class SerialRound:
    """Outcome of one whole serial round (acceptance *and* FIFO deletion).

    Produced by :func:`resolve_capped_round_serial`, which owns the
    ``new_loads`` array outright — the caller installs it with
    ``BinArray.commit_round`` (a reference swap, no copy) instead of
    applying per-key deltas. Everything else is scalars or small arrays
    derived from the load histogram, so committing a round touches no
    O(n) memory beyond the kernel's own passes.

    Attributes
    ----------
    new_loads:
        ``(N,)`` bin loads after acceptance and the end-of-round deletion.
    accepted_per_bucket:
        Balls accepted from each priority bucket — a plain ``list`` of K
        ints (``AgePool.remove_bulk`` consumes it without conversion).
    accepted_total:
        Total balls accepted.
    deleted:
        Bins that performed their FIFO deletion (non-empty after accept).
    max_load:
        Maximum bin load after the deletion.
    peak_load:
        Maximum bin load after acceptance (before the deletion) — the
        round's high-water mark for ``BinArray.peak_load``.
    wait_values / wait_counts:
        Sorted wait histogram of the balls accepted this round.
    next_hist:
        ``bincount(new_loads, minlength=hist_size)`` as a plain list —
        the load histogram *after* the deletion, computed by an
        O(hist_size) shift of the post-acceptance histogram. Feeding it
        back as ``initial_hist`` of the next call skips that round's
        opening O(N) bincount.
    """

    new_loads: np.ndarray
    accepted_per_bucket: list[int]
    accepted_total: int
    deleted: int
    max_load: int
    peak_load: int
    wait_values: np.ndarray
    wait_counts: np.ndarray
    next_hist: list[int]


def resolve_capped_round_serial(
    loads: np.ndarray,
    capacity_limit,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    hist_size: int,
    sparse_threshold: int | None = None,
    initial_hist: np.ndarray | None = None,
) -> SerialRound:
    """Whole-round serial kernel for finite capacities: accept + delete.

    The bandwidth-lean specialisation of the counting path for the serial
    simulators (one process, bounded bins, no down bins). Three ideas cut
    the per-round memory traffic to a handful of O(N) passes:

    1. **Clip against effective capacity, not free slots.** Track the
       evolving loads ``Q`` (starting at ``loads``) and clip
       ``Q = min(Q + R_b, capacity_limit)`` per bucket. For a shared
       finite capacity the limit is a *scalar* — no free-slots array is
       ever built, maintained, or subtracted.
    2. **Everything else comes from the load histogram.** ``H =
       bincount(Q)`` has ``hist_size`` entries (≤ capacity + 1). The
       per-bucket change ``ΔH`` telescopes into the wait histogram
       (``cumsum(ΔH)`` is the bucket's queue-position occupancy — see
       :func:`_resolve_counting`), its sum is the bucket's acceptance,
       ``N − H[0]`` is the deletion count, and the last non-zero index is
       the max load. No non-zero scans over bins, ever.
    3. **Sparse buckets never touch O(N) memory.** A bucket with few
       balls (older buckets at equilibrium are tiny) is resolved by
       gather/scatter on its unique keys alone; ``H`` is adjusted through
       the same ΔH bookkeeping, so dense and sparse buckets compose
       freely in one sweep.

    The FIFO deletion ``max(Q − 1, 0)`` is fused into the same pass
    structure, and the returned ``new_loads`` is handed to the caller by
    reference — with lazy free-slot recomputation in ``BinArray``, a
    fault-free round moves ~3× fewer bytes than the general counting
    path.

    Parameters
    ----------
    loads:
        Bin loads at round start; **not mutated** (the kernel builds its
        own ``Q``).
    capacity_limit:
        Effective per-bin load ceiling ``max(capacity, load)``: a scalar
        for shared capacities, an ``(N,)`` array for heterogeneous or
        degraded bins. Must dominate ``loads`` element-wise.
    ball_keys / bucket_counts / bucket_ages:
        As for :func:`resolve_capped_round` (priority-major layout).
        ``bucket_counts`` and ``bucket_ages`` may be plain lists — the
        serial callers pass the ``AgePool`` bookkeeping straight through
        without building arrays, since all per-bucket arithmetic here is
        scalar.
    hist_size:
        ``max(capacity_limit) + 1`` — fixed size for the load histogram.
    sparse_threshold:
        Buckets with at most this many balls take the gather/scatter
        path; defaults to ``N // 8``. (Buckets small enough that even
        ``np.unique`` dispatch overhead dominates — a couple dozen balls
        — are resolved ball-by-ball in Python instead.)
    initial_hist:
        Optional ``bincount(loads, minlength=hist_size)`` as a list,
        computed by a previous call (``SerialRound.next_hist``); passing
        it skips the opening O(N) bincount. The caller owns the
        staleness contract: it must describe ``loads`` exactly. The list
        is consumed (mutated) by the kernel.

    Returns
    -------
    SerialRound
        The committed-round summary; install with
        ``BinArray.commit_round``.
    """
    num_keys = loads.size
    if type(bucket_counts) is not list:
        bucket_counts = np.asarray(bucket_counts).tolist()
    if type(bucket_ages) is not list:
        bucket_ages = np.asarray(bucket_ages).tolist()
    num_buckets = len(bucket_counts)
    if sparse_threshold is None:
        sparse_threshold = num_keys >> 3
    scalar_limit = np.isscalar(capacity_limit)

    tel = _telemetry_current()
    start = time.perf_counter() if tel is not None else 0.0

    # The load histogram, wait histogram, and all per-bucket ΔH
    # bookkeeping live in plain Python lists: they have O(capacity) ≈
    # single-digit entries, where list arithmetic beats numpy dispatch
    # overhead several-fold.
    if initial_hist is not None:
        hist = initial_hist if type(initial_hist) is list else np.asarray(initial_hist).tolist()
    else:
        hist = np.bincount(loads, minlength=hist_size).tolist()
    # Ages are monotone (descending for oldest-first, ascending for the
    # youngest-first ablation), so the extremes bound the histogram.
    max_age = int(max(bucket_ages[0], bucket_ages[-1]))
    wait_hist = [0] * (max_age + hist_size)
    accepted_per_bucket = [0] * num_buckets
    accepted_total = 0
    current = loads
    owned = False  # whether `current` is kernel-owned scratch (mutable)
    offset = 0

    for b in range(num_buckets):
        count = bucket_counts[b]
        if count == 0:
            continue
        keys_b = ball_keys[offset : offset + count]
        offset += count
        age = bucket_ages[b]

        if count <= _TINY_BUCKET:
            # Ball-by-ball: within one bucket every ball has the same
            # priority, so greedy per-ball admission equals the per-key
            # clip, and a ball landing at in-round load ``q`` takes queue
            # position ``q`` (wait = age + q). A couple dozen scalar ops
            # undercut any vectorized formulation at this size.
            taken = 0
            for key in keys_b.tolist():
                held = current[key]
                limit = capacity_limit if scalar_limit else capacity_limit[key]
                if held < limit:
                    if not owned:
                        current = current.copy()
                        owned = True
                    current[key] = held + 1
                    hist[held] -= 1
                    hist[held + 1] += 1
                    wait_hist[age + held] += 1
                    taken += 1
            if taken:
                accepted_per_bucket[b] = taken
                accepted_total += taken
            continue

        if count <= sparse_threshold:
            # Unique keys via counting, not sorting: one bincount plus a
            # flatnonzero replaces the whole np.unique sort-diff chain.
            requests = np.bincount(keys_b, minlength=num_keys)
            unique_keys = np.flatnonzero(requests)
            request_counts = requests[unique_keys]
            held = current[unique_keys]
            limit = capacity_limit if scalar_limit else capacity_limit[unique_keys]
            take = np.minimum(request_counts, limit - held)
            if not take.any():
                continue
            moved = held + take
            delta = (
                np.bincount(held, minlength=hist_size)
                - np.bincount(moved, minlength=hist_size)
            ).tolist()
            for k in range(hist_size):
                if delta[k]:
                    hist[k] -= delta[k]
            if not owned:
                current = current.copy()
                owned = True
            current[unique_keys] = moved
        else:
            requests = np.bincount(keys_b, minlength=num_keys)
            if owned:
                np.add(current, requests, out=requests)
            else:
                requests += current
            np.minimum(requests, capacity_limit, out=requests)
            current = requests
            owned = True
            new_hist = np.bincount(current, minlength=hist_size).tolist()
            delta = [a - b2 for a, b2 in zip(hist, new_hist)]
            hist = new_hist

        # cumsum(ΔH) is this bucket's queue-position occupancy; shift by
        # its age and accumulate straight into the wait histogram.
        run = 0
        taken = 0
        for k in range(hist_size):
            run += delta[k]
            if run:
                wait_hist[age + k] += run
                taken += run
        if taken:
            accepted_per_bucket[b] = taken
            accepted_total += taken

    deleted = num_keys - hist[0]
    peak_load = 0
    for k in range(hist_size - 1, 0, -1):
        if hist[k]:
            peak_load = k
            break
    if not owned:
        current = current.copy()
    np.subtract(current, 1, out=current)
    np.maximum(current, 0, out=current)

    # The deletion shifts the histogram down one load level (empty bins
    # stay empty) — an O(hist_size) update that seeds the next round.
    next_hist = hist[1:]
    next_hist.append(0)
    next_hist[0] += hist[0]

    wait_values = []
    wait_counts = []
    for w, occupants in enumerate(wait_hist):
        if occupants:
            wait_values.append(w)
            wait_counts.append(occupants)
    result = SerialRound(
        new_loads=current,
        accepted_per_bucket=accepted_per_bucket,
        accepted_total=accepted_total,
        deleted=deleted,
        max_load=max(peak_load - 1, 0),
        peak_load=peak_load,
        wait_values=np.array(wait_values, dtype=np.int64),
        wait_counts=np.array(wait_counts, dtype=np.int64),
        next_hist=next_hist,
    )
    if tel is not None:
        tel.inc("kernel_dispatch_total", path="serial")
        tel.observe("kernel_resolve_seconds", time.perf_counter() - start, path="serial")
    return result
