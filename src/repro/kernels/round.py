"""The fused single-pass CAPPED acceptance kernel.

The legacy round step of :class:`~repro.core.capped.CappedProcess` walks
the age buckets oldest-first and pays ``np.bincount(minlength=n)``, a
``minimum`` against free slots, and a full ``accept()`` pass *per bucket*
— several full O(n) element passes per age bucket per round, plus a
Python round-trip each. The fused kernel resolves capped acceptance for
*all* age buckets in one shot, with no per-ball sorting and no Python
loop over bins.

The key observation is exchangeability: balls generated in the same round
are interchangeable, so acceptance never needs per-ball identity — only
the *count* of requests per (bin, age bucket). Two regimes follow:

**Unit-take fast path** (``free.max() <= 1``, which always holds for
``c = 1`` — the paper's flagship configuration): every bin accepts at
most one ball, namely its highest-priority requester. A descending-
priority sweep of slice scatters (``winner[keys_of_bucket_b] = b``,
oldest bucket written last) leaves each touched bin holding its winning
bucket — O(#thrown) scattered writes and a handful of O(n) mask passes,
with no request counting at all.

**Bucket-sweep general path**: buckets are swept highest priority first,
each bucket's request counts (one ``bincount``) clipped against the
*remaining* free slots held in a single scratch array — the greedy rule
without mutating bin state between buckets, with a single commit at the
end, and with an early exit once the round's acceptance budget is
exhausted (at high load the oldest buckets soak up every slot and the
large youngest buckets are never even counted). A dense
``(bucket, key)`` cumulative-clip formulation was tried and rejected:
the live bucket count K stays small (~3–7 even at λ = 0.99), so the
K·n matrix passes move strictly more memory than K short sweeps.

Either way, waiting times fall out per acceptance *run*: the accepted
balls of bucket ``b`` in key ``k`` start at queue position
``load_k + (accepted for k in buckets before b)``, and a ball at
position ``p`` waits ``age_b + p`` rounds (see
:mod:`repro.balls.bin_array` for the position identity). Runs are
expanded with :func:`positional_waits`.

The kernel never mutates its inputs; callers commit the result through
``BinArray.commit_accepted`` and ``AgePool.remove_bulk`` (one call each
per round).

Keys need not be bin indices: the batched engine passes composite keys
``replicate·n + bin`` over a flat ``(R·n,)`` bin array, resolving R
independent replicates in the same pass (buckets of different replicates
share the label axis; keys of different replicates never collide).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.telemetry.runtime import current as _telemetry_current

__all__ = ["ResolvedRound", "positional_waits", "resolve_capped_round", "wait_histogram"]

_EMPTY = np.zeros(0, dtype=np.int64)


def wait_histogram(waits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted (values, counts) of a waiting-time sample.

    Equivalent to ``np.unique(waits, return_counts=True)`` but via one
    bincount — waits are small non-negative ints, so counting beats the
    O(m log m) sort for the large per-round samples near λ → 1.
    """
    if not waits.size:
        return _EMPTY, _EMPTY
    histogram = np.bincount(waits)
    values = np.flatnonzero(histogram)
    return values, histogram[values]


def positional_waits(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand per-run (start, length) pairs into individual waiting times.

    Run ``i`` contributes the values ``starts[i], starts[i]+1, ...,
    starts[i]+lengths[i]−1`` — one per accepted ball, in queue order.
    """
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY
    repeated_starts = np.repeat(starts, lengths)
    cumulative = np.cumsum(lengths) - lengths
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
    return repeated_starts + offsets


@dataclass(slots=True)
class ResolvedRound:
    """Outcome of one fused acceptance pass.

    Acceptance is reported per *run* — a maximal group of accepted balls
    sharing a (key, priority bucket) — because runs are what both commit
    targets need: per-key totals for the bin array, per-bucket totals for
    the pool, and the run expansion for waits. Runs are ordered by key
    ascending (ties by bucket priority), matching the layout of ``waits``.

    Array dtypes are an implementation detail: the unit-take path returns
    the narrowest representation that holds the values (boolean per-key
    counts, int8 buckets, a broadcast view of ones for the lengths), so
    consume the fields numerically rather than relying on ``int64`` or on
    writability.

    Attributes
    ----------
    accepted_per_key:
        ``(N,)`` — balls accepted by each key, ``min(total requests, free)``.
    accepted_per_bucket:
        ``(K,)`` — balls accepted from each priority bucket (bucket 0 is
        highest priority), ready for ``AgePool.remove_bulk``.
    run_keys:
        Key of each non-empty acceptance run, ascending.
    run_buckets:
        Priority bucket of each run, aligned with ``run_keys``.
    run_lengths:
        Balls in each run, aligned with ``run_keys``.
    waits:
        Waiting time of every accepted ball (``age + queue position``),
        grouped by run.
    accepted_total:
        Total balls accepted.
    wait_hist:
        Optional precomputed ``(values, counts)`` wait histogram,
        equivalent to ``wait_histogram(waits)``. Set by the unit-take
        path when the caller passed ``need_runs=False`` and every load is
        zero: each accepted ball then waits exactly its bucket's age, so
        the histogram is just the per-bucket totals — no per-ball arrays
        are ever materialised (``run_*`` and ``waits`` come back empty).
        ``None`` means histogram ``waits`` yourself.
    """

    accepted_per_key: np.ndarray
    accepted_per_bucket: np.ndarray
    run_keys: np.ndarray
    run_buckets: np.ndarray
    run_lengths: np.ndarray
    waits: np.ndarray
    accepted_total: int
    wait_hist: tuple[np.ndarray, np.ndarray] | None = None


def _resolve_unit_take(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    need_runs: bool = True,
) -> ResolvedRound:
    """Fast path for ``free <= 1`` everywhere (always true at c = 1).

    Each key accepts at most one ball: the one from its highest-priority
    requesting bucket. A descending-priority sweep of slice scatters
    (oldest bucket written last, so it wins) finds that bucket per key
    without counting requests at all.
    """
    num_keys = free.size
    num_buckets = bucket_counts.size
    # The first-touch scatter is bandwidth-bound; a byte-wide winner array
    # cuts its traffic 8× (the live bucket count fits easily — K ~ 7).
    dtype = np.int8 if num_buckets < 127 else np.int64
    winner = np.full(num_keys, num_buckets, dtype=dtype)
    bounds = np.cumsum(bucket_counts)
    for b in range(num_buckets - 1, -1, -1):
        winner[ball_keys[bounds[b] - bucket_counts[b] : bounds[b]]] = b

    # At homogeneous c = 1 every bin is emptied by the end-of-round
    # deletion, so at round start no bin is full and every load is zero;
    # these checks are cheap single passes that skip the full-bin masking
    # and the per-run load gather in that (dominant) case. Neither is
    # assumed: heterogeneous, degraded, or down bins take the full
    # branches.
    if int(free.min()) <= 0:
        # Evict full/down keys from the winner map itself so the mask
        # and the per-bucket counts below both see the clipped outcome.
        winner[free <= 0] = num_buckets
    accepted_mask = winner < num_buckets
    accepted_per_bucket = np.bincount(winner, minlength=num_buckets + 1)[:num_buckets]
    accepted_total = int(accepted_per_bucket.sum())

    if not need_runs and not loads.any():
        # Lean mode for serial consumers, who only ever histogram the
        # waits: with every load zero each accepted ball waits exactly
        # its bucket's age, so the histogram *is* the per-bucket totals
        # and no per-ball array (runs or waits) need exist at all. This
        # skips three O(#accepted) passes per round.
        live = np.flatnonzero(accepted_per_bucket)
        ages_live = bucket_ages[live]
        order = np.argsort(ages_live)
        return ResolvedRound(
            accepted_per_key=accepted_mask,
            accepted_per_bucket=accepted_per_bucket,
            run_keys=_EMPTY,
            run_buckets=_EMPTY,
            run_lengths=_EMPTY,
            waits=_EMPTY,
            accepted_total=accepted_total,
            wait_hist=(ages_live[order], accepted_per_bucket[live][order]),
        )

    run_keys = np.flatnonzero(accepted_mask)
    # int64 immediately: every later use (age gather, bucket bincount)
    # indexes with these, and fancy indexing converts narrow index arrays
    # to intp internally — one explicit widening beats two hidden ones.
    run_buckets = winner[run_keys].astype(np.int64)
    # Runs all have length 1, so each wait is just its run's start. The
    # other run arrays stay narrow (bool per-key counts, a broadcast
    # length-1 view for the lengths) — every consumer uses them
    # numerically, and the avoided widening copies are a measurable slice
    # of the per-round budget at n = 2^15.
    waits = bucket_ages[run_buckets]
    if loads.any():
        waits = waits + loads[run_keys]
    return ResolvedRound(
        accepted_per_key=accepted_mask,
        accepted_per_bucket=accepted_per_bucket,
        run_keys=run_keys,
        run_buckets=run_buckets,
        run_lengths=np.broadcast_to(np.int64(1), (run_keys.size,)),
        waits=waits,
        accepted_total=accepted_total,
    )


def _resolve_bucket_sweep(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    sort_runs: bool,
) -> ResolvedRound:
    """General path: vectorized priority sweep against a shared free budget.

    Buckets are swept highest priority first, each clipping its request
    counts against the *remaining* free slots — exactly the greedy rule,
    but maintained in one scratch array instead of mutating bin state K
    times (the legacy path pays a full ``BinArray.accept`` per bucket).
    Queue positions come for free: the balls key ``k`` accepted before
    bucket ``b`` number ``free[k] − free_rem[k]``, so bucket ``b``'s run
    at ``k`` starts at ``loads[k] + free[k] − free_rem[k]``.

    Two exits keep the sweep from touching work that cannot matter:
    empty buckets are skipped outright, and the sweep stops as soon as
    the acceptance budget ``Σ min(free_k, #balls)`` is exhausted — at
    high load the oldest buckets soak up every slot and the (large)
    youngest buckets are never counted.
    """
    num_keys = free.size
    num_buckets = bucket_counts.size
    free_rem = free.copy()
    # Queue positions for later buckets shift by what earlier buckets got
    # accepted; tracked as effective loads so each bucket's starts are a
    # single gather.
    queue_heads = loads.copy()
    # Per-key acceptance can't exceed the balls thrown, so clipping by
    # ball count bounds the budget without overflowing on the unbounded-
    # capacity sentinel (2**62).
    budget = int(np.minimum(free, ball_keys.size).sum())

    bounds = np.cumsum(bucket_counts)
    key_parts: list[np.ndarray] = []
    bucket_parts: list[int] = []
    length_parts: list[np.ndarray] = []
    start_parts: list[np.ndarray] = []
    accepted_per_bucket = np.zeros(num_buckets, dtype=np.int64)
    for b in range(num_buckets):
        count = int(bucket_counts[b])
        if count == 0 or budget == 0:
            continue
        keys_b = ball_keys[bounds[b] - count : bounds[b]]
        requests = np.bincount(keys_b, minlength=num_keys)
        take = np.minimum(requests, free_rem, out=requests)
        keys_taken = np.flatnonzero(take)
        if keys_taken.size == 0:
            continue
        lengths = take[keys_taken]
        start_parts.append(bucket_ages[b] + queue_heads[keys_taken])
        queue_heads[keys_taken] += lengths
        free_rem[keys_taken] -= lengths
        key_parts.append(keys_taken)
        bucket_parts.append(b)
        length_parts.append(lengths)
        taken = int(lengths.sum())
        accepted_per_bucket[b] = taken
        budget -= taken

    if not key_parts:
        return ResolvedRound(
            np.zeros(num_keys, dtype=np.int64),
            accepted_per_bucket,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            0,
        )

    run_keys = np.concatenate(key_parts)
    run_buckets = np.repeat(
        np.asarray(bucket_parts, dtype=np.int64),
        np.asarray([part.size for part in key_parts], dtype=np.int64),
    )
    run_lengths = np.concatenate(length_parts)
    starts = np.concatenate(start_parts)
    if sort_runs and len(key_parts) > 1:
        # Each bucket's runs are already key-ascending; a stable sort over
        # the (few) runs merges them into key-major order for callers that
        # asked for it.
        order = np.argsort(run_keys, kind="stable")
        run_keys = run_keys[order]
        run_buckets = run_buckets[order]
        run_lengths = run_lengths[order]
        starts = starts[order]
    accepted_per_key = free - free_rem
    return ResolvedRound(
        accepted_per_key=accepted_per_key,
        accepted_per_bucket=accepted_per_bucket,
        run_keys=run_keys,
        run_buckets=run_buckets,
        run_lengths=run_lengths,
        waits=positional_waits(starts, run_lengths),
        accepted_total=int(accepted_per_bucket.sum()),
    )


def resolve_capped_round(
    free: np.ndarray,
    loads: np.ndarray,
    ball_keys: np.ndarray,
    bucket_counts: np.ndarray,
    bucket_ages: np.ndarray,
    sort_runs: bool = True,
    need_runs: bool = True,
) -> ResolvedRound:
    """Resolve capped acceptance for all thrown balls in one pass.

    Parameters
    ----------
    free:
        Per-key free slots (``BinArray.free_slots()``); not mutated.
    loads:
        Per-key loads at the start of the round; not mutated.
    ball_keys:
        One key per thrown ball (bin index, or composite
        ``replicate·n + bin`` for the batched engine), laid out in
        priority-major order: the ``bucket_counts[0]`` balls of the
        highest-priority bucket first, then bucket 1, and so on. Ball
        order *within* a bucket never matters (exchangeability).
    bucket_counts:
        ``(K,)`` — balls per priority bucket. Bucket 0 is accepted first:
        oldest-first callers pass age buckets oldest-first, the
        youngest-first ablation passes them reversed.
    bucket_ages:
        ``(K,)`` — age ``t − label`` of each priority bucket's balls.
    sort_runs:
        When True (default), runs (and the aligned waits) are returned in
        key-ascending order — required by the batched engine's
        per-replicate splitting. Callers that only histogram the waits
        (the serial processes) pass False and skip the merge sort; run
        order is then bucket-major.
    need_runs:
        When False, the caller promises not to read the ``run_*`` or
        ``waits`` fields *if* ``wait_hist`` comes back set — which lets
        the unit-take path skip materialising every per-ball array (see
        :class:`ResolvedRound.wait_hist`). With ``wait_hist=None`` the
        result is fully populated regardless, so consumers branch on the
        field, not on the flag they passed. Requires distinct
        ``bucket_ages`` (true by construction for age buckets, which come
        from strictly increasing labels) — duplicate ages would need the
        histogram merge that only the expanded path performs.

    Returns
    -------
    ResolvedRound
        Acceptance counts and waiting times. Loads and pool state are
        *not* updated — callers commit via ``BinArray.commit_accepted``
        and ``AgePool.remove_bulk``.
    """
    num_buckets = bucket_counts.size
    if ball_keys.size == 0 or num_buckets == 0:
        return ResolvedRound(
            np.zeros(free.size, dtype=np.int64),
            np.zeros(num_buckets, dtype=np.int64),
            _EMPTY,
            _EMPTY,
            _EMPTY,
            _EMPTY,
            0,
        )
    # Dispatch: unit-take covers c = 1 exactly and saturated heterogeneous
    # rounds opportunistically; the sentinel for unbounded bins (2**62)
    # keeps those on the general path.
    unit_take = int(free.max()) <= 1
    # Telemetry (path counts + resolve timing) is read-only and costs one
    # global read when disabled; it lands in a *separate* metric from the
    # phase laps so attribution never double-counts the accept phase.
    tel = _telemetry_current()
    if tel is None:
        if unit_take:
            return _resolve_unit_take(
                free, loads, ball_keys, bucket_counts, bucket_ages, need_runs
            )
        return _resolve_bucket_sweep(
            free, loads, ball_keys, bucket_counts, bucket_ages, sort_runs
        )
    start = time.perf_counter()
    if unit_take:
        resolved = _resolve_unit_take(
            free, loads, ball_keys, bucket_counts, bucket_ages, need_runs
        )
    else:
        resolved = _resolve_bucket_sweep(
            free, loads, ball_keys, bucket_counts, bucket_ages, sort_runs
        )
    path = "unit_take" if unit_take else "bucket_sweep"
    tel.inc("kernel_dispatch_total", path=path)
    tel.observe("kernel_resolve_seconds", time.perf_counter() - start, path=path)
    return resolved
