"""Persistent worker processes for the sharded CAPPED engine.

The process backend of :class:`repro.kernels.sharded.ShardedCappedProcess`
keeps one OS process per shard alive for the whole run, with the two big
per-round arrays in POSIX shared memory:

* ``loads`` — the full ``(n,)`` bin-load vector. The coordinator's
  :class:`~repro.balls.bin_array.BinArray` is re-pointed at this segment,
  so in-place coordinator mutations (empty-round deletions) and worker
  writes (each worker owns the slice for its bin range) are both visible
  everywhere without copying.
* ``choices`` — the round's bin-choice vector, bucket-major in generation
  order. Each worker scatters its deterministic per-bucket slices into
  place during the *generate* phase; after the barrier every worker reads
  the whole vector back to filter out the keys landing in its own range.
  The buffer grows geometrically if a round overflows it (the pool is
  unbounded in principle), with workers re-attaching on a ``grow``
  message.

Per round the pipes therefore carry only bucket spans, capacity specs,
and O(capacity)-sized result summaries — never O(n) or O(pool) data.

The protocol is two synchronous barriers per round, driven by the
coordinator: broadcast ``gen`` and collect acks (all choices staged),
then broadcast ``resolve`` and collect summaries (all load slices
written). Workers own their RNG substreams; ``get_rng``/``set_rng``
messages move bit-generator state for checkpointing. ``fork`` is used
where available (workers inherit nothing they rely on — all state
arrives via arguments and messages — but startup is cheap), ``spawn``
otherwise.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from multiprocessing import shared_memory

import numpy as np

from repro.rng import RngFactory

__all__ = ["WorkerPool"]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering for cleanup.

    Only the coordinator (the creator) unlinks segments; ``track=False``
    (Python 3.13+) keeps the resource tracker from double-unlinking on
    worker exit. Older interpreters fall back to default tracking, which
    merely warns.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - pre-3.13 interpreters
        return shared_memory.SharedMemory(name=name)


def _worker_main(
    conn,
    shard_index: int,
    shards: int,
    n: int,
    lo: int,
    hi: int,
    seed: int,
    capacity_slice,
    loads_name: str,
    choices_name: str,
    choices_capacity: int,
) -> None:
    """Worker loop: serve gen/resolve/rng/grow messages until ``close``."""
    from repro.kernels.sharded import _resolve_shard

    rng = RngFactory(seed=seed).child(shard_index).generator("capped")
    loads_shm = _attach(loads_name)
    loads = np.ndarray((n,), dtype=np.int64, buffer=loads_shm.buf)
    choices_shm = _attach(choices_name)
    choices = np.ndarray((choices_capacity,), dtype=np.int64, buffer=choices_shm.buf)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "gen":
                counts = msg[1]
                sizes = [
                    c * (shard_index + 1) // shards - c * shard_index // shards for c in counts
                ]
                block = rng.integers(0, n, size=sum(sizes))
                pos = 0
                offset = 0
                for count, size in zip(counts, sizes):
                    if size:
                        start = offset + count * shard_index // shards
                        choices[start : start + size] = block[pos : pos + size]
                        pos += size
                    offset += count
                conn.send(("ok",))
            elif op == "resolve":
                _, spans, ages, limit_spec, hist_size, initial_hist = msg
                if limit_spec[0] == "scalar":
                    limit = limit_spec[1]
                elif limit_spec[0] == "held":
                    limit = capacity_slice
                else:
                    limit = limit_spec[1]
                bucket_keys = [choices[o : o + c] for o, c in spans]
                start = time.perf_counter()
                res = _resolve_shard(
                    loads[lo:hi], limit, lo, hi, bucket_keys, ages, hist_size, initial_hist
                )
                loads[lo:hi] = res.new_loads
                seconds = time.perf_counter() - start
                # Summaries only over the pipe: the loads already crossed
                # via shared memory.
                conn.send(("res", dataclasses.replace(res, new_loads=None), seconds))
            elif op == "grow":
                _, name, capacity = msg
                choices = None
                choices_shm.close()
                choices_shm = _attach(name)
                choices = np.ndarray((capacity,), dtype=np.int64, buffer=choices_shm.buf)
                conn.send(("ok",))
            elif op == "get_rng":
                conn.send(("rng", rng.bit_generator.state))
            elif op == "set_rng":
                rng.bit_generator.state = msg[1]
                conn.send(("ok",))
            elif op == "close":
                conn.send(("ok",))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker message {op!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - torn-down coordinator
        pass
    finally:
        loads = None
        choices = None
        loads_shm.close()
        choices_shm.close()
        conn.close()


class WorkerPool:
    """Coordinator side of the process backend (one worker per shard)."""

    def __init__(self, process) -> None:
        self._process = process
        n = process.n
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._shm_loads = shared_memory.SharedMemory(create=True, size=max(8 * n, 8))
        self._loads_view = np.ndarray((n,), dtype=np.int64, buffer=self._shm_loads.buf)
        self._loads_view[:] = process.bins.loads
        process.bins.loads = self._loads_view
        # Headroom for the steady-state pool (≈ λn/(1−λ) can exceed n for
        # high λ); geometric growth handles the rest.
        self._choice_capacity = max(1024, 4 * process.arrivals.per_round + n)
        self._shm_choices = shared_memory.SharedMemory(create=True, size=8 * self._choice_capacity)
        self._choices_view = np.ndarray(
            (self._choice_capacity,), dtype=np.int64, buffer=self._shm_choices.buf
        )
        capacity = process.bins.capacity
        self._conns = []
        self._procs = []
        try:
            for s, (lo, hi) in enumerate(process.ranges):
                parent, child = self._ctx.Pipe()
                cap_slice = None if np.isscalar(capacity) else capacity[lo:hi].copy()
                worker = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        child,
                        s,
                        process.shards,
                        n,
                        lo,
                        hi,
                        process.seed,
                        cap_slice,
                        self._shm_loads.name,
                        self._shm_choices.name,
                        self._choice_capacity,
                    ),
                    daemon=True,
                )
                worker.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(worker)
        except BaseException:
            self.close()
            raise

    # -- plumbing ----------------------------------------------------------

    def _expect(self, conn, tag: str):
        try:
            reply = conn.recv()
        except EOFError as exc:  # pragma: no cover - crashed worker
            raise RuntimeError("sharded worker died mid-round") from exc
        if reply[0] != tag:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {tag!r} from worker, got {reply[0]!r}")
        return reply

    def _broadcast(self, message, tag: str = "ok") -> None:
        for conn in self._conns:
            conn.send(message)
        for conn in self._conns:
            self._expect(conn, tag)

    def _ensure_capacity(self, total: int) -> None:
        if total <= self._choice_capacity:
            return
        new_capacity = max(total, 2 * self._choice_capacity)
        new_shm = shared_memory.SharedMemory(create=True, size=8 * new_capacity)
        self._broadcast(("grow", new_shm.name, new_capacity))
        self._choices_view = None
        self._shm_choices.close()
        self._shm_choices.unlink()
        self._shm_choices = new_shm
        self._choice_capacity = new_capacity
        self._choices_view = np.ndarray((new_capacity,), dtype=np.int64, buffer=new_shm.buf)

    # -- the round ---------------------------------------------------------

    def stage_choices(self, counts: list[int], choices) -> list[tuple[int, int]]:
        """Fill the shared choice buffer; return per-bucket ``(offset, count)``.

        Without injection this is the generate barrier — every worker
        draws its block and scatters it. With injection the coordinator
        writes the provided vector directly and the substreams stay put.
        """
        total = sum(counts)
        self._ensure_capacity(total)
        if choices is None:
            self._broadcast(("gen", counts))
        else:
            self._choices_view[:total] = np.asarray(choices, dtype=np.int64)
        spans = []
        offset = 0
        for count in counts:
            spans.append((offset, count))
            offset += count
        return spans

    def read_choices(self, thrown: int) -> np.ndarray:
        return self._choices_view[:thrown].copy()

    def resolve(self, spans, ages, capacity_limit, hist_size, shard_hists):
        """Resolve barrier: returns per-shard summaries and resolve seconds."""
        scalar = np.isscalar(capacity_limit)
        held = capacity_limit is self._process.bins.capacity
        for s, conn in enumerate(self._conns):
            if scalar:
                spec = ("scalar", int(capacity_limit))
            elif held:
                spec = ("held",)
            else:
                lo, hi = self._process.ranges[s]
                spec = ("ship", capacity_limit[lo:hi])
            conn.send(("resolve", spans, ages, spec, hist_size, shard_hists[s]))
        results = []
        seconds = []
        for conn in self._conns:
            _, res, dt = self._expect(conn, "res")
            results.append(res)
            seconds.append(dt)
        return results, seconds

    # -- checkpoint hooks --------------------------------------------------

    def get_rng_states(self) -> list[dict]:
        for conn in self._conns:
            conn.send(("get_rng",))
        return [self._expect(conn, "rng")[1] for conn in self._conns]

    def set_rng_states(self, states) -> None:
        for conn, state in zip(self._conns, states):
            conn.send(("set_rng", state))
        for conn in self._conns:
            self._expect(conn, "ok")

    def reload_loads(self) -> None:
        """Re-point the bins at shared memory after ``BinArray.set_state``.

        ``set_state`` installs a fresh loads array; the workers keep
        looking at the segment, so copy the restored values in and swap
        the view back.
        """
        bins = self._process.bins
        if bins.loads is not self._loads_view:
            self._loads_view[:] = bins.loads
            bins.loads = self._loads_view

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for worker in self._procs:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()
                worker.join(timeout=5)
        self._conns = []
        self._procs = []
        # Detach the bins from shared memory before unlinking it.
        bins = self._process.bins
        if bins.loads is self._loads_view:
            bins.loads = np.array(self._loads_view)
        self._loads_view = None
        self._choices_view = None
        self._shm_loads.close()
        self._shm_choices.close()
        try:
            self._shm_loads.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            self._shm_choices.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
