"""Batched-replicate CAPPED engine: R independent runs, one kernel call per round.

The paper's data points average over independent replicates of the same
parameter point. Simulating them one at a time wastes the vector width:
at n = 2¹² a single replicate's arrays are far below the sizes where numpy
amortises per-call overhead. :class:`BatchedCappedProcess` therefore runs
R replicates as one flat process:

* bin loads live in a single :class:`~repro.balls.bin_array.BinArray` of
  ``R·n`` slots (replicate r owns slots ``[r·n, (r+1)·n)``);
* the age pool is a ``(#labels, R)`` count matrix sharing one label axis;
* each round draws every replicate's choices from *its own* generator,
  offsets them into composite keys ``r·n + bin``, and resolves acceptance
  for all replicates with a single
  :func:`~repro.kernels.round.resolve_capped_round` pass.

Because replicate r's choices come from the same generator stream a
standalone :class:`~repro.core.capped.CappedProcess` would use, and capped
acceptance factorises over replicates (keys of different replicates never
collide), the per-replicate :class:`~repro.engine.metrics.RoundRecord`
sequences are **bit-identical** to R separate runs — batching is purely a
throughput optimisation, never a statistics change. The equivalence tests
in ``tests/kernels/test_batched.py`` enforce this.

Faults and observers are not supported on the batched path: the
:class:`~repro.faults.injector.FaultInjector` mutates one process's bins,
which has no meaning across a fused replicate block. Use per-replicate
processes for fault studies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.balls.bin_array import BinArray
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.kernels.round import resolve_capped_round, wait_histogram
from repro.telemetry.runtime import PhaseClock, current as _telemetry_current
from repro.workloads.arrivals import ArrivalProcess, DeterministicArrivals

__all__ = ["BatchedCappedProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


class BatchedCappedProcess:
    """R independent CAPPED(c, λ) replicates as one ``(R·n,)`` flat process.

    Parameters
    ----------
    n:
        Bins per replicate.
    capacity:
        Buffer size ``c`` — a shared int, ``None`` for unbounded, or a
        per-bin ``(n,)`` array (tiled across replicates).
    lam:
        Injection rate λ; ``λn`` must be an integer unless a custom
        ``arrivals`` process is supplied.
    rngs:
        One ``numpy.random.Generator`` per replicate, e.g.
        ``[RngFactory(seed).child(r).generator("capped") for r in range(R)]``
        — the exact generators the serial per-replicate path uses, which is
        what makes the batched output bit-identical to it.
    arrivals:
        Optional arrival process shared by all replicates; each replicate's
        per-round call receives that replicate's generator, so stochastic
        arrivals also reproduce the serial streams.
    initial_pool:
        Balls (labelled round 0) pre-loaded into every replicate's pool.
    """

    def __init__(
        self,
        n: int,
        capacity,
        lam: float,
        rngs: Sequence[np.random.Generator],
        arrivals: ArrivalProcess | None = None,
        initial_pool: int = 0,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if not rngs:
            raise ConfigurationError("need at least one replicate generator")
        if initial_pool < 0:
            raise ConfigurationError(f"initial_pool must be non-negative, got {initial_pool}")
        self.n = n
        self.capacity = capacity
        self.lam = lam
        self.rngs = list(rngs)
        self.replicates = len(self.rngs)
        self.arrivals = arrivals if arrivals is not None else DeterministicArrivals(n=n, lam=lam)
        if capacity is not None and not np.isscalar(capacity):
            capacity = np.asarray(capacity, dtype=np.int64)
            if capacity.shape != (n,):
                raise ConfigurationError(
                    f"per-bin capacities must have shape ({n},), got {capacity.shape}"
                )
            flat_capacity = np.tile(capacity, self.replicates)
        else:
            flat_capacity = capacity
        self.bins = BinArray(self.replicates * n, flat_capacity)
        # Shared label axis; one count column per replicate.
        self._labels: list[int] = []
        self._counts = np.zeros((0, self.replicates), dtype=np.int64)
        if initial_pool:
            self._labels = [0]
            self._counts = np.full((1, self.replicates), initial_pool, dtype=np.int64)
        self.round = 0

    @property
    def pool_sizes(self) -> np.ndarray:
        """Per-replicate pool size ``m(t)`` as an ``(R,)`` array."""
        return self._counts.sum(axis=0)

    def step(self) -> list[RoundRecord]:
        """Advance all replicates one round; one record per replicate."""
        self.round += 1
        t = self.round
        n, R = self.n, self.replicates

        # Telemetry is read-only and RNG-free; one global read when off.
        tel = _telemetry_current()
        clock = PhaseClock(tel, kernel="batched") if tel is not None else None

        arrivals_r = [int(self.arrivals.arrivals(t, rng)) for rng in self.rngs]
        if any(a < 0 for a in arrivals_r):
            raise ConfigurationError(f"negative arrivals {arrivals_r} in round {t}")
        if any(arrivals_r):
            self._labels.append(t)
            self._counts = np.vstack(
                (self._counts, np.asarray(arrivals_r, dtype=np.int64)[None, :])
            )

        counts = self._counts  # (L, R)
        num_labels = len(self._labels)
        labels_arr = np.asarray(self._labels, dtype=np.int64)
        bucket_ages = t - labels_arr
        thrown = counts.sum(axis=0)  # (R,)

        # Per replicate: draw this round's choices from the replicate's own
        # stream (one call — identical to the serial fused path), offset
        # into the composite key space, then regroup the chunks
        # bucket-major: the kernel wants all highest-priority balls first,
        # and buckets of different replicates share the same priority.
        key_chunks: list[list[np.ndarray]] = []
        for r, rng in enumerate(self.rngs):
            choices = rng.integers(0, n, size=int(thrown[r])) + r * n
            key_chunks.append(np.split(choices, np.cumsum(counts[:, r])[:-1]))
        if num_labels:
            ball_keys = np.concatenate(
                [key_chunks[r][b] for b in range(num_labels) for r in range(R)]
            )
        else:
            ball_keys = _EMPTY
        if clock is not None:
            clock.lap("throw")

        resolved = resolve_capped_round(
            self.bins.free_slots(),
            self.bins.loads,
            ball_keys,
            counts.sum(axis=1),
            bucket_ages,
        )

        accepted_r = np.zeros(R, dtype=np.int64)
        if resolved.accepted_total:
            # Per-(replicate, bucket) acceptance from the runs: replicate =
            # run key block, bucket = run bucket. Weighted bincount counts
            # are small integers, exactly representable in float64.
            rep_of_run = resolved.run_keys // n
            accepted_matrix = (
                np.bincount(
                    rep_of_run * num_labels + resolved.run_buckets,
                    weights=resolved.run_lengths,
                    minlength=R * num_labels,
                )
                .astype(np.int64)
                .reshape(R, num_labels)
            )
            accepted_r = accepted_matrix.sum(axis=1)
            self._counts = counts = counts - accepted_matrix.T
            if np.any(counts < 0):
                raise InvariantViolation("batched pool bucket went negative")
            keep = counts.sum(axis=1) > 0
            if not np.all(keep):
                self._labels = [label for label, k in zip(self._labels, keep.tolist()) if k]
                self._counts = counts = counts[keep]
            self.bins.commit_accepted(resolved.accepted_per_key)
        if clock is not None:
            clock.lap("accept")

        # End-of-round FIFO deletion, counted per replicate.
        loads2d = self.bins.loads.reshape(R, n)
        deleted_r = np.count_nonzero(loads2d > 0, axis=1)
        self.bins.delete_one_each()
        if clock is not None:
            clock.lap("delete")
        loads2d = self.bins.loads.reshape(R, n)
        total_load_r = loads2d.sum(axis=1)
        max_load_r = loads2d.max(axis=1)
        pool_sizes = counts.sum(axis=0)

        # Acceptance runs (and the aligned waits) are sorted by key, so
        # each replicate's waits form one contiguous slice; run bounds map
        # to ball bounds through the cumulative run lengths.
        run_bounds = np.searchsorted(resolved.run_keys, np.arange(1, R) * n)
        ball_offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(resolved.run_lengths))
        )
        wait_groups = np.split(resolved.waits, ball_offsets[run_bounds])

        records = []
        for r in range(R):
            wait_values, wait_counts = wait_histogram(wait_groups[r])
            records.append(
                RoundRecord(
                    round=t,
                    arrivals=arrivals_r[r],
                    thrown=int(thrown[r]),
                    accepted=int(accepted_r[r]),
                    deleted=int(deleted_r[r]),
                    pool_size=int(pool_sizes[r]),
                    total_load=int(total_load_r[r]),
                    max_load=int(max_load_r[r]),
                    wait_values=wait_values,
                    wait_counts=wait_counts,
                )
            )
        if clock is not None:
            clock.lap("collect")
            clock.finish()
        return records

    def get_state(self) -> dict:
        """Checkpoint the full engine state (all replicates + their RNGs).

        Captures the shared label axis, the ``(L, R)`` pool-count matrix,
        the flat ``R·n`` bin array, and every replicate's bit-generator
        state, so :meth:`set_state` resumes all R trajectories
        bit-identically.
        """
        return {
            "round": self.round,
            "labels": list(self._labels),
            "counts": self._counts.tolist(),
            "bins": self.bins.get_state(),
            "rngs": [rng.bit_generator.state for rng in self.rngs],
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (same n/c/λ/R engine)."""
        rng_states = state["rngs"]
        if len(rng_states) != self.replicates:
            raise ValueError(
                f"state has {len(rng_states)} replicate streams, expected {self.replicates}"
            )
        counts = np.asarray(state["counts"], dtype=np.int64).reshape(-1, self.replicates)
        if len(state["labels"]) != counts.shape[0]:
            raise ValueError(
                f"state has {len(state['labels'])} labels but {counts.shape[0]} count rows"
            )
        self.round = int(state["round"])
        self._labels = [int(label) for label in state["labels"]]
        self._counts = counts.copy()
        self.bins.set_state(state["bins"])
        for rng, rng_state in zip(self.rngs, rng_states):
            rng.bit_generator.state = rng_state
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify pool-matrix and bin-state consistency."""
        self.bins.check_invariants()
        if np.any(self._counts < 0):
            raise InvariantViolation("batched pool bucket with negative count")
        labels = self._labels
        if any(a >= b for a, b in zip(labels, labels[1:])):
            raise InvariantViolation("batched pool labels not strictly increasing")
        if labels and labels[0] > self.round:
            raise InvariantViolation(
                f"pool contains balls from future round {labels[0]} (now {self.round})"
            )
