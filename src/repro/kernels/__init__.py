"""Vectorised round kernels shared by the fast simulators.

:mod:`repro.kernels.round`
    The fused single-pass CAPPED acceptance kernel: one composite
    ``bincount`` into a (key, age-bucket) request matrix plus a cumulative
    clip replaces the legacy per-age-bucket ``bincount`` + ``free_slots``
    + ``accept`` sweep — O(#thrown + n·#ages) element work with no
    per-ball sorting and no Python loop over buckets.

:mod:`repro.kernels.batched`
    :class:`~repro.kernels.batched.BatchedCappedProcess` — R independent
    replicates simulated as one flat ``(R·n,)`` bin array with a single
    kernel invocation per round, bit-identical per replicate to R separate
    :class:`~repro.core.capped.CappedProcess` runs.

:mod:`repro.kernels.sharded`
    :class:`~repro.kernels.sharded.ShardedCappedProcess` — one simulation
    partitioned by bin range across shards (inline or persistent
    shared-memory worker processes), with deterministic per-shard RNG
    substreams so ``kernel="legacy"`` stays the bit-identity oracle.

See ``docs/kernels.md`` for the cumulative-clip acceptance argument and
the RNG stream contract that make the fused paths *exactly* (not just
distributionally) equivalent to the legacy per-bucket path.
"""

from repro.kernels.batched import BatchedCappedProcess
from repro.kernels.round import (
    ResolvedRound,
    SerialRound,
    positional_waits,
    resolve_capped_round,
    resolve_capped_round_serial,
    wait_histogram,
)
from repro.kernels.sharded import ShardedCappedProcess

__all__ = [
    "BatchedCappedProcess",
    "ResolvedRound",
    "SerialRound",
    "ShardedCappedProcess",
    "positional_waits",
    "resolve_capped_round",
    "resolve_capped_round_serial",
    "wait_histogram",
]
