"""Vectorised round kernels shared by the fast simulators.

:mod:`repro.kernels.round`
    The fused single-pass CAPPED acceptance kernel: one composite
    ``bincount`` into a (key, age-bucket) request matrix plus a cumulative
    clip replaces the legacy per-age-bucket ``bincount`` + ``free_slots``
    + ``accept`` sweep — O(#thrown + n·#ages) element work with no
    per-ball sorting and no Python loop over buckets.

:mod:`repro.kernels.batched`
    :class:`~repro.kernels.batched.BatchedCappedProcess` — R independent
    replicates simulated as one flat ``(R·n,)`` bin array with a single
    kernel invocation per round, bit-identical per replicate to R separate
    :class:`~repro.core.capped.CappedProcess` runs.

See ``docs/kernels.md`` for the cumulative-clip acceptance argument and
the RNG stream contract that make the fused paths *exactly* (not just
distributionally) equivalent to the legacy per-bucket path.
"""

from repro.kernels.batched import BatchedCappedProcess
from repro.kernels.round import (
    ResolvedRound,
    positional_waits,
    resolve_capped_round,
    wait_histogram,
)

__all__ = [
    "BatchedCappedProcess",
    "ResolvedRound",
    "positional_waits",
    "resolve_capped_round",
    "wait_histogram",
]
