"""The ``repro-checkpoint/v1`` on-disk snapshot format.

A checkpoint is a single JSON document::

    {
      "format": "repro-checkpoint/v1",
      "fingerprint": "<code fingerprint from repro.parallel.keys>",
      "sha256": "<hex digest of the canonical payload JSON>",
      "meta": {...},        # small, uncovered by the digest: round, phase...
      "payload": {...}      # the actual resumable state
    }

Three properties make it safe to resume from:

* **Atomicity** — the document is written to a temporary file in the same
  directory, flushed, fsynced, and renamed over the final path (and the
  directory fsynced), so a reader only ever sees no file or a complete one.
  A crash mid-write leaves a ``*.tmp`` orphan, never a torn checkpoint.
* **Integrity** — ``sha256`` is the digest of the payload's canonical JSON
  (sorted keys, no whitespace); :func:`read_checkpoint` recomputes and
  compares it, so bit rot or a truncated rename target is detected as
  :class:`~repro.errors.CheckpointCorrupt` rather than restored.
* **Versioning** — the schema name and a fingerprint of the measurement
  modules (:func:`repro.parallel.keys.measurement_fingerprint`) are checked
  on load; a snapshot written by different simulator code raises
  :class:`~repro.errors.CheckpointIncompatible` instead of silently
  resuming a trajectory the current code would never have produced.

Payloads are plain JSON values; numpy scalars and arrays that leak into a
state dict are converted by the canonical encoder (arrays become lists —
every ``set_state`` in this package accepts lists).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointCorrupt, CheckpointIncompatible

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_fingerprint",
    "dumps_canonical",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_header",
]

CHECKPOINT_FORMAT = "repro-checkpoint/v1"


def checkpoint_fingerprint() -> str:
    """The code fingerprint stamped into (and checked against) snapshots."""
    from repro.parallel.keys import measurement_fingerprint

    return measurement_fingerprint()


def _json_default(value: Any) -> Any:
    """Canonical-encoder fallback for numpy values inside state dicts."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} into a checkpoint")


def dumps_canonical(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace).

    The same rendering is used at write time (to compute the digest) and at
    read time (to verify it), so the digest is stable across the
    serialise → parse round trip.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_json_default)


def payload_digest(payload: Any) -> str:
    """sha256 hex digest of the payload's canonical JSON."""
    return hashlib.sha256(dumps_canonical(payload).encode("utf-8")).hexdigest()


def write_checkpoint(
    path: Path | str,
    payload: dict[str, Any],
    meta: dict[str, Any] | None = None,
    fingerprint: str | None = None,
) -> int:
    """Atomically write one snapshot; returns the bytes written.

    The write path is tmp + flush + fsync + rename + directory fsync, so a
    crash at any instant leaves either the previous file or the new one —
    never a torn document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": CHECKPOINT_FORMAT,
        "fingerprint": fingerprint if fingerprint is not None else checkpoint_fingerprint(),
        "sha256": payload_digest(payload),
        "meta": meta or {},
        "payload": payload,
    }
    data = dumps_canonical(document).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_CREAT | os.O_TRUNC | os.O_WRONLY, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return len(data)


def _parse_document(path: Path) -> dict[str, Any]:
    try:
        raw = path.read_bytes()
    except OSError as err:
        raise CheckpointCorrupt(f"cannot read checkpoint {path}: {err}") from err
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise CheckpointCorrupt(f"checkpoint {path} is not valid JSON: {err}") from err
    if not isinstance(document, dict):
        raise CheckpointCorrupt(f"checkpoint {path} is not a JSON object")
    missing = {"format", "fingerprint", "sha256", "payload"} - set(document)
    if missing:
        raise CheckpointCorrupt(f"checkpoint {path} is missing fields: {sorted(missing)}")
    return document


def read_checkpoint_header(path: Path | str) -> dict[str, Any]:
    """Parse and digest-verify a snapshot without compatibility checks.

    For inspection tooling: returns the whole document (format, fingerprint,
    meta, payload) after verifying the payload digest, regardless of whether
    the snapshot matches the current code.
    """
    path = Path(path)
    document = _parse_document(path)
    actual = payload_digest(document["payload"])
    if actual != document["sha256"]:
        raise CheckpointCorrupt(
            f"checkpoint {path} failed integrity check: "
            f"payload digest {actual[:12]} != recorded {str(document['sha256'])[:12]}"
        )
    return document


def read_checkpoint(path: Path | str, expected_fingerprint: str | None = None) -> dict[str, Any]:
    """Load, verify, and compatibility-check one snapshot document.

    Raises :class:`~repro.errors.CheckpointCorrupt` for torn/tampered files
    and :class:`~repro.errors.CheckpointIncompatible` for schema or code
    fingerprint mismatches. ``expected_fingerprint`` defaults to the current
    :func:`checkpoint_fingerprint`.
    """
    path = Path(path)
    document = read_checkpoint_header(path)
    if document["format"] != CHECKPOINT_FORMAT:
        raise CheckpointIncompatible(
            f"checkpoint {path} has format {document['format']!r}, "
            f"expected {CHECKPOINT_FORMAT!r}"
        )
    expected = (
        expected_fingerprint if expected_fingerprint is not None else checkpoint_fingerprint()
    )
    if document["fingerprint"] != expected:
        raise CheckpointIncompatible(
            f"checkpoint {path} was written by different code "
            f"(fingerprint {document['fingerprint']} != {expected})"
        )
    return document
