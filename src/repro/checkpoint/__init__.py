"""Durable checkpoint/restore for long simulations (``repro-checkpoint/v1``).

See :mod:`repro.checkpoint.format` for the snapshot file format and
:mod:`repro.checkpoint.store` for the rolling store with corruption
fallback. ``docs/checkpointing.md`` documents the format spec, the
atomicity/retention semantics, and the RNG-stream contract that makes a
resumed run bit-identical to an uninterrupted one.
"""

from repro.checkpoint.format import (
    CHECKPOINT_FORMAT,
    checkpoint_fingerprint,
    dumps_canonical,
    read_checkpoint,
    read_checkpoint_header,
    write_checkpoint,
)
from repro.checkpoint.store import CheckpointStore, RestoredCheckpoint

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "RestoredCheckpoint",
    "checkpoint_fingerprint",
    "dumps_canonical",
    "read_checkpoint",
    "read_checkpoint_header",
    "write_checkpoint",
]
