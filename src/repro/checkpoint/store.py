"""Rolling checkpoint store: save every K rounds, restore from the newest
valid snapshot.

One :class:`CheckpointStore` owns one directory of ``ckpt-<round>.json``
files for one logical run. Writes go through the atomic
:func:`~repro.checkpoint.format.write_checkpoint` path; retention keeps the
last ``keep`` snapshots so a corrupt or torn newest file (detected by its
sha256) falls back to the one before it instead of losing the run.

Telemetry (when a session is active):

* ``checkpoint_write_seconds`` / ``checkpoint_bytes`` — one observation per
  snapshot written;
* ``restores_total{reason=...}`` — one increment per successful restore;
  ``reason="resume"`` for a clean newest-snapshot load, ``"corrupt"`` when
  at least one torn/tampered snapshot had to be skipped, ``"fingerprint"``
  when only incompatible snapshots were skipped.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Any

from repro.errors import CheckpointCorrupt, CheckpointIncompatible, ConfigurationError
from repro.checkpoint.format import (
    checkpoint_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from repro.telemetry.runtime import current as _telemetry_current

__all__ = ["CheckpointStore", "RestoredCheckpoint"]

_NAME = re.compile(r"^ckpt-(\d+)\.json$")


class RestoredCheckpoint:
    """A successfully restored snapshot plus its provenance.

    Attributes
    ----------
    payload / meta:
        The snapshot content as written.
    path:
        File the state was restored from.
    round:
        Round counter encoded in the filename.
    skipped_corrupt / skipped_incompatible:
        Newer snapshots that were passed over to reach this one.
    """

    __slots__ = ("payload", "meta", "path", "round", "skipped_corrupt", "skipped_incompatible")

    def __init__(
        self,
        payload: dict[str, Any],
        meta: dict[str, Any],
        path: Path,
        round: int,
        skipped_corrupt: int,
        skipped_incompatible: int,
    ) -> None:
        self.payload = payload
        self.meta = meta
        self.path = path
        self.round = round
        self.skipped_corrupt = skipped_corrupt
        self.skipped_incompatible = skipped_incompatible

    @property
    def reason(self) -> str:
        """Telemetry label for how this restore happened."""
        if self.skipped_corrupt:
            return "corrupt"
        if self.skipped_incompatible:
            return "fingerprint"
        return "resume"


class CheckpointStore:
    """Versioned snapshots of one run under one directory.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first save).
    keep:
        Snapshots retained after each save; older ones are pruned. Must be
        at least 2 — with a single snapshot there is nothing to fall back
        to when the newest write is the one the crash tore.
    fingerprint:
        Code fingerprint stamped into snapshots; defaults to the current
        :func:`~repro.checkpoint.format.checkpoint_fingerprint`.
    """

    def __init__(
        self,
        directory: Path | str,
        keep: int = 3,
        fingerprint: str | None = None,
    ) -> None:
        if keep < 2:
            raise ConfigurationError(f"keep must be >= 2 (fallback needs a spare), got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.fingerprint = fingerprint if fingerprint is not None else checkpoint_fingerprint()

    def path_for(self, round: int) -> Path:
        return self.directory / f"ckpt-{round:010d}.json"

    def snapshots(self) -> list[tuple[int, Path]]:
        """(round, path) pairs of snapshots on disk, newest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        found.sort(reverse=True)
        return found

    def save(self, round: int, payload: dict[str, Any], meta: dict[str, Any] | None = None) -> Path:
        """Durably write the snapshot for ``round`` and prune old ones."""
        path = self.path_for(round)
        started = time.perf_counter()
        nbytes = write_checkpoint(path, payload, meta=meta, fingerprint=self.fingerprint)
        elapsed = time.perf_counter() - started
        tel = _telemetry_current()
        if tel is not None:
            tel.observe("checkpoint_write_seconds", elapsed)
            tel.observe("checkpoint_bytes", nbytes)
        self._prune()
        return path

    def _prune(self) -> None:
        for _, path in self.snapshots()[self.keep :]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is benign
                pass
        # Orphaned tmp files are dead write attempts; clear them too.
        if self.directory.is_dir():
            for tmp in self.directory.glob("ckpt-*.json.tmp"):
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover
                    pass

    def load_latest(self) -> RestoredCheckpoint | None:
        """Restore from the newest *valid* snapshot; None when none exists.

        Scans newest → oldest: a snapshot failing its digest (torn write,
        bit rot, deliberate truncation) or its fingerprint (other code)
        is skipped and counted; the first one that verifies wins. Emits one
        ``restores_total{reason}`` increment per successful restore.
        """
        skipped_corrupt = 0
        skipped_incompatible = 0
        for round, path in self.snapshots():
            try:
                document = read_checkpoint(path, expected_fingerprint=self.fingerprint)
            except CheckpointCorrupt:
                skipped_corrupt += 1
                continue
            except CheckpointIncompatible:
                skipped_incompatible += 1
                continue
            restored = RestoredCheckpoint(
                payload=document["payload"],
                meta=document.get("meta", {}),
                path=path,
                round=round,
                skipped_corrupt=skipped_corrupt,
                skipped_incompatible=skipped_incompatible,
            )
            tel = _telemetry_current()
            if tel is not None:
                tel.inc("restores_total", reason=restored.reason)
            return restored
        return None

    def latest_round(self) -> int | None:
        """Round of the newest valid snapshot (no telemetry, no payload)."""
        restored = self.load_latest_quiet()
        return None if restored is None else restored.round

    def load_latest_quiet(self) -> RestoredCheckpoint | None:
        """Like :meth:`load_latest` but without the telemetry increment.

        For provenance peeks (the runner recording "this task will resume
        from round N") that must not double-count the actual restore.
        """
        tel_suppressed = _SuppressedTelemetry()
        with tel_suppressed:
            return self.load_latest()


class _SuppressedTelemetry:
    """Context manager that hides the telemetry session from this thread.

    The store's restore path increments ``restores_total``; provenance
    peeks reuse the same scan logic but must stay silent.
    """

    def __enter__(self) -> "_SuppressedTelemetry":
        from repro.telemetry import runtime

        self._saved = runtime.current()
        if self._saved is not None:
            runtime.disable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        from repro.telemetry import runtime

        if self._saved is not None:
            runtime.enable(self._saved)
