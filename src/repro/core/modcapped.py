"""The MODCAPPED(c, λ) analysis process (paper Section IV-A).

MODCAPPED is the coupled process the paper's proofs run against. It deviates
from CAPPED(c, λ) in two ways:

**Ball generation.** Instead of ``λn`` new balls, round ``t`` generates
``max{λn, m* − m(t−1)}`` balls, so at least ``m*`` balls are thrown every
round. For c = 1, ``m* = ln(1/(1−λ))·n + 2n`` (Section III); for general c,
``m* = 2/c·ln(1/(1−λ))·n + 6c·n`` (Section IV-A).

**Buffers.** Time is partitioned into phases of length c
(phase ``j`` = rounds ``I_j = [c·j, c·(j+1)−1]``). Each bin has one *buffer*
per phase with the time-dependent capacity of Eq. (5):

* buffer ``j`` is active only during phases ``j−1`` and ``j``;
* its capacity ramps 0→c during phase ``j−1`` (one slot per round, the
  *fill* phase) and c→0 during phase ``j`` (the *drain* phase);
* in any round the two active buffers have capacities summing to exactly c.

Each thrown ball carries a colour preference (``⌈ν/2⌉`` for the draining
buffer, ``⌊ν/2⌋`` for the filling one); a bin distributes its arrivals
greedily between the active buffers, maximising satisfied preferences
without exceeding either capacity — so the *total* accepted is still
``min(ν_i, c − ℓ_i)``. At the end of the round every non-empty *draining*
buffer deletes one ball.

Reproduction note on the paper's red/blue naming
------------------------------------------------
Section IV-A labels ``⌈t/c⌉`` "red" and states that red buffers delete.
That conflicts with the proof of Lemma 7 ("buffer j deletes balls only
during I_j" — and ``t ∈ I_j ⇔ j = ⌊t/c⌋``) and with the capacity schedule:
if the buffer whose capacity is *decreasing* did not delete, its load could
exceed its capacity. The mathematically consistent semantics — the only one
under which Eq. (5), Lemma 6 and Lemma 7 all hold — is that the
**drain-phase buffer** ``⌊t/c⌋`` deletes, and we implement that. (The two
labels coincide whenever ``c | t``, including every round for c = 1, so the
warm-up process of Section III is unaffected.)

The class tracks only what the analysis needs — pool size and per-buffer
loads — since ball ages play no role in the dominance argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.theory import m_star
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng

__all__ = ["buffer_capacity", "ModCappedProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


def buffer_capacity(j: int, t: int, c: int) -> int:
    """Eq. (5): capacity ``c_j(t)`` of buffer ``j`` in round ``t``.

    ``0`` outside the active window ``I_{j−1} ∪ I_j``; ramps up by one per
    round during phase ``j−1`` and down by one per round during phase ``j``.
    """
    if c < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {c}")
    if c * (j - 1) <= t < c * j:  # t ∈ I_{j−1}: fill phase
        return t - (j - 1) * c
    if c * j <= t <= c * (j + 1) - 1:  # t ∈ I_j: drain phase
        return (j + 1) * c - t
    return 0


class ModCappedProcess:
    """Vectorised MODCAPPED(c, λ) simulator.

    Parameters
    ----------
    n, c, lam:
        As for CAPPED(c, λ).
    m_star_value:
        Override for the generation threshold ``m*``; defaults to the
        paper's value for the given ``c`` (warm-up variant when c = 1).
    rng:
        Seed, generator, or factory.
    """

    def __init__(
        self,
        n: int,
        c: int,
        lam: float,
        m_star_value: float | None = None,
        rng=None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if c < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {c}")
        if not 0.0 <= lam < 1.0:
            raise ConfigurationError(f"lambda must lie in [0, 1), got {lam}")
        per_round = lam * n
        if abs(per_round - round(per_round)) > 1e-9:
            raise ConfigurationError(f"lambda*n must be an integer, got {per_round}")
        self.n = n
        self.c = c
        self.lam = lam
        self.arrivals_per_round = round(per_round)
        self.m_star = float(m_star_value) if m_star_value is not None else m_star(c, lam, n)
        self.rng = resolve_rng(rng, "modcapped")
        self.pool_size = 0
        self.round = 0
        self._total_scratch = np.zeros(n, dtype=np.int64)
        # Per-buffer loads, keyed by absolute buffer index j. Only the two
        # active buffers are kept; buffers are dropped once their capacity
        # returns to zero (they are provably empty by then).
        self.buffer_loads: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # round structure helpers
    # ------------------------------------------------------------------
    def drain_index(self, t: int | None = None) -> int:
        """Buffer in its drain phase (the deleting one): ``j = ⌊t/c⌋``."""
        t = self.round if t is None else t
        return t // self.c

    def fill_index(self, t: int | None = None) -> int | None:
        """Buffer in its fill phase, or ``None`` when ``c | t``."""
        t = self.round if t is None else t
        return t // self.c + 1 if t % self.c else None

    def generation_count(self) -> int:
        """Balls generated this round: ``max{λn, m* − m(t−1)}``."""
        deficit = int(np.ceil(self.m_star)) - self.pool_size
        return max(self.arrivals_per_round, deficit)

    def total_loads(self, out: np.ndarray | None = None) -> np.ndarray:
        """Per-bin total stored balls ``ℓ_i`` (sum over active buffers).

        ``out`` lets the hot per-round path reuse a scratch array instead of
        allocating; external callers get a fresh array by default.
        """
        if out is None:
            out = np.zeros(self.n, dtype=np.int64)
        else:
            out.fill(0)
        for loads in self.buffer_loads.values():
            out += loads
        return out

    def _loads_for(self, j: int) -> np.ndarray:
        if j not in self.buffer_loads:
            self.buffer_loads[j] = np.zeros(self.n, dtype=np.int64)
        return self.buffer_loads[j]

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def step(
        self,
        choices: np.ndarray | None = None,
        drain_preference: np.ndarray | None = None,
    ) -> RoundRecord:
        """Advance one round of MODCAPPED(c, λ).

        Parameters
        ----------
        choices:
            Optional pre-drawn bin choices for all ``ν(t)`` thrown balls
            (used by the coupling); drawn from the process RNG otherwise.
        drain_preference:
            Optional boolean mask selecting balls that prefer the draining
            buffer. The paper partitions arbitrarily with ``⌈ν/2⌉`` on one
            side; the default marks the first ``⌈ν/2⌉`` balls.
        """
        self.round += 1
        t = self.round

        generated = self.generation_count()
        thrown = self.pool_size + generated

        if choices is None:
            choices = self.rng.integers(0, self.n, size=thrown)
        elif len(choices) != thrown:
            raise ConfigurationError(
                f"injected choices must cover all {thrown} thrown balls, got {len(choices)}"
            )

        if drain_preference is None:
            drain_preference = np.zeros(thrown, dtype=bool)
            drain_preference[: -(-thrown // 2)] = True  # first ⌈ν/2⌉ balls
        elif len(drain_preference) != thrown:
            raise ConfigurationError(
                f"drain_preference mask must cover all {thrown} balls, got {len(drain_preference)}"
            )

        drain_j = self.drain_index(t)
        fill_j = self.fill_index(t)
        drain_loads = self._loads_for(drain_j)

        if fill_j is None:
            # Single active buffer with full capacity c: plain capped
            # acceptance, colour preferences are vacuous.
            requests = np.bincount(choices, minlength=self.n)
            accepted_drain = np.minimum(requests, self.c - drain_loads)
            drain_loads += accepted_drain
            accepted_total = int(accepted_drain.sum())
        else:
            fill_loads = self._loads_for(fill_j)
            cap_drain = buffer_capacity(drain_j, t, self.c)
            cap_fill = buffer_capacity(fill_j, t, self.c)
            # One bincount over the composite key (bin + n·preference)
            # replaces two boolean gathers plus two bincounts.
            composite = np.bincount(
                choices + np.where(drain_preference, 0, self.n), minlength=2 * self.n
            )
            requests_drain = composite[: self.n]
            requests_fill = composite[self.n :]
            space_drain = cap_drain - drain_loads
            space_fill = cap_fill - fill_loads
            # Greedy preference-maximising assignment: satisfy preferences
            # first, then cross-fill leftovers into the other buffer.
            to_drain = np.minimum(requests_drain, space_drain)
            to_fill = np.minimum(requests_fill, space_fill)
            cross_to_fill = np.minimum(requests_drain - to_drain, space_fill - to_fill)
            cross_to_drain = np.minimum(requests_fill - to_fill, space_drain - to_drain)
            drain_loads += to_drain + cross_to_drain
            fill_loads += to_fill + cross_to_fill
            accepted_total = int((to_drain + to_fill + cross_to_drain + cross_to_fill).sum())

        self.pool_size = thrown - accepted_total

        # End of round: every non-empty draining buffer deletes one ball
        # (FIFO — ball identity is not tracked, so a deletion decrements).
        nonempty = drain_loads > 0
        deleted = int(np.count_nonzero(nonempty))
        drain_loads[nonempty] -= 1

        self._retire_drained_buffers(t)

        total = self.total_loads(out=self._total_scratch)
        return RoundRecord(
            round=t,
            arrivals=generated,
            thrown=thrown,
            accepted=accepted_total,
            deleted=deleted,
            pool_size=self.pool_size,
            total_load=int(total.sum()),
            max_load=int(total.max()) if self.n else 0,
            wait_values=_EMPTY,
            wait_counts=_EMPTY,
        )

    def _retire_drained_buffers(self, t: int) -> None:
        """Drop buffers whose capacity is zero from round ``t+1`` onward."""
        for j in list(self.buffer_loads):
            if buffer_capacity(j, t + 1, self.c) == 0:
                loads = self.buffer_loads.pop(j)
                if int(loads.sum()) != 0:
                    raise InvariantViolation(
                        f"buffer {j} retired with {int(loads.sum())} balls still stored"
                    )

    def get_state(self) -> dict:
        """Checkpoint the process (pool, buffers, RNG) for exact resume."""
        return {
            "round": self.round,
            "pool_size": self.pool_size,
            "buffers": {j: loads.tolist() for j, loads in self.buffer_loads.items()},
            "rng": self.rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.round = int(state["round"])
        self.pool_size = int(state["pool_size"])
        self.buffer_loads = {
            int(j): np.asarray(loads, dtype=np.int64).copy()
            for j, loads in state["buffers"].items()
        }
        for loads in self.buffer_loads.values():
            if loads.shape != (self.n,):
                raise ValueError(f"buffer loads must have shape ({self.n},)")
        self.rng.bit_generator.state = state["rng"]
        self.check_invariants()

    def check_invariants(self) -> None:
        """Loads within Eq. (5) capacities; non-negative pool."""
        if self.pool_size < 0:
            raise InvariantViolation(f"negative pool size {self.pool_size}")
        t = self.round
        for j, loads in self.buffer_loads.items():
            if np.any(loads < 0):
                raise InvariantViolation(f"buffer {j} has a negative load")
            # After the end-of-round deletion, loads must fit next round's
            # capacity (the drain invariant of Lemma 7's proof).
            cap_next = buffer_capacity(j, t + 1, self.c)
            if np.any(loads > cap_next):
                raise InvariantViolation(
                    f"buffer {j} load {int(loads.max())} exceeds next-round capacity {cap_next}"
                )
        total = self.total_loads()
        if np.any(total > self.c):
            raise InvariantViolation(
                f"total bin load {int(total.max())} exceeds bin capacity {self.c}"
            )
