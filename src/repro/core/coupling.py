"""The paper's coupling of CAPPED(c, λ) and MODCAPPED(c, λ).

Lemmas 1 (c = 1) and 6 (general c) prove that, under the coupling
constructed in their proofs, the pool size of CAPPED is *pointwise* bounded
by the pool size of MODCAPPED in every round — implying the stochastic
dominance that lets the paper analyse the simpler MODCAPPED process instead.

The coupling (proof of Lemma 6): in round ``t``, CAPPED throws
``ν^C(t) = m^C(t−1) + λn`` balls and MODCAPPED throws
``ν^M(t) = m^M(t−1) + max{λn, m* − m^M(t−1)} ≥ ν^C(t)`` balls. Number the
balls; the first ``ν^C(t)`` balls of MODCAPPED reuse the *same* random bin
choices as their CAPPED counterparts, the remainder draw fresh choices.
Both processes prefer smaller-numbered balls (we number oldest-first, which
realises the acceptance rule of Algorithm 1).

Under this coupling the inequalities ``m^C(t) ≤ m^M(t)`` and
``ℓ^C_i(t) ≤ ℓ^M_i(t)`` hold *surely* — any violation in
:class:`CoupledRun` is an implementation bug, which is exactly what the
test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.capped import CappedProcess
from repro.core.modcapped import ModCappedProcess
from repro.errors import InvariantViolation
from repro.rng import resolve_rng
from repro.stats.dominance import DominanceReport, coupled_dominance_report

__all__ = ["CoupledRun", "CoupledRoundResult", "run_coupled"]


@dataclass(frozen=True, slots=True)
class CoupledRoundResult:
    """Pool sizes and dominance status after one coupled round."""

    round: int
    capped_pool: int
    modcapped_pool: int
    pool_dominated: bool
    loads_dominated: bool


class CoupledRun:
    """Runs CAPPED and MODCAPPED in lockstep under the paper's coupling.

    Parameters
    ----------
    n, c, lam:
        Shared process parameters (c must be finite — MODCAPPED is only
        defined for finite capacities).
    rng:
        Seed/generator/factory for the shared randomness.
    strict:
        If True (default), raise :class:`InvariantViolation` the moment a
        dominance inequality fails; otherwise record and continue (used by
        failure-injection tests).
    """

    def __init__(self, n: int, c: int, lam: float, rng=None, strict: bool = True) -> None:
        generator = resolve_rng(rng, "coupling")
        self.capped = CappedProcess(n=n, capacity=c, lam=lam, rng=generator)
        self.modcapped = ModCappedProcess(n=n, c=c, lam=lam, rng=generator)
        self.rng = generator
        self.n = n
        self.c = c
        self.lam = lam
        self.strict = strict
        self.arrivals_per_round = round(lam * n)
        self.capped_pools: list[int] = []
        self.modcapped_pools: list[int] = []
        self.history: list[CoupledRoundResult] = []

    @property
    def round(self) -> int:
        """Rounds executed so far."""
        return self.capped.round

    def step(self) -> CoupledRoundResult:
        """Advance both processes one round with shared bin choices."""
        nu_capped = self.capped.pool_size + self.arrivals_per_round
        nu_mod = self.modcapped.pool_size + self.modcapped.generation_count()
        # ν^M ≥ ν^C holds whenever dominance has held so far; drawing the
        # maximum keeps the coupling well-defined even in non-strict runs
        # where an (injected) violation may have occurred.
        choices = self.rng.integers(0, self.n, size=max(nu_capped, nu_mod))

        capped_record = self.capped.step(choices=choices[:nu_capped])
        mod_record = self.modcapped.step(choices=choices[:nu_mod])

        loads_ok = bool(np.all(self.capped.bins.loads <= self.modcapped.total_loads()))
        pool_ok = capped_record.pool_size <= mod_record.pool_size
        result = CoupledRoundResult(
            round=capped_record.round,
            capped_pool=capped_record.pool_size,
            modcapped_pool=mod_record.pool_size,
            pool_dominated=pool_ok,
            loads_dominated=loads_ok,
        )
        self.capped_pools.append(capped_record.pool_size)
        self.modcapped_pools.append(mod_record.pool_size)
        self.history.append(result)

        if self.strict and not (pool_ok and loads_ok):
            raise InvariantViolation(
                f"coupling dominance violated in round {result.round}: "
                f"pool {result.capped_pool} vs {result.modcapped_pool}, "
                f"loads dominated: {loads_ok}"
            )
        return result

    def run(self, rounds: int) -> DominanceReport:
        """Execute ``rounds`` coupled rounds and report pool dominance."""
        for _ in range(rounds):
            self.step()
        return self.report()

    def report(self) -> DominanceReport:
        """Pointwise dominance report over all executed rounds."""
        return coupled_dominance_report(self.capped_pools, self.modcapped_pools)


def run_coupled(n: int, c: int, lam: float, rounds: int, rng=None) -> DominanceReport:
    """Convenience wrapper: run a coupled pair and return the report."""
    return CoupledRun(n=n, c=c, lam=lam, rng=rng).run(rounds)
