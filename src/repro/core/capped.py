"""The CAPPED(c, λ) process — Algorithm 1 of the paper.

One round of CAPPED(c, λ) (paper Section II):

1. Generate ``λn`` new balls and add them to the pool.
2. Every pool ball picks a bin independently and uniformly at random.
3. A bin ``i`` with load ``ℓ_i`` receiving ``ν_i`` requests accepts the
   ``min(c − ℓ_i, ν_i)`` oldest balls (ties broken arbitrarily); accepted
   balls leave the pool and join the bin's FIFO queue.
4. Every non-empty bin deletes the ball it allocated first (FIFO). The
   waiting time of a ball deleted in round ``t`` is its age ``t − label``.

Two implementations are provided:

:class:`CappedProcess`
    The fast simulator. Balls of equal age are exchangeable, so the pool is
    an :class:`~repro.balls.pool.AgePool` of per-label counts. The default
    ``fused`` kernel (:mod:`repro.kernels.round`) resolves all age buckets
    in one composite bincount plus a cumulative clip — O(#thrown + n·#ages)
    element work with no per-ball sorting and no Python loop; the
    ``legacy`` kernel sweeps the buckets oldest-first, paying several full
    O(n) passes *per bucket*, and is kept as the executable reference (the
    two are bit-exact,
    including RNG consumption — see ``docs/kernels.md``). Waiting times use
    the position identity (see :mod:`repro.balls.bin_array`): a ball
    accepted at queue position ``p`` in round ``t`` is deleted at end of
    round ``t+p``, so its waiting time ``(t − label) + p`` is recorded at
    acceptance.

:class:`ExactCappedSimulator`
    The literal per-ball reference implementation with real FIFO queues and
    deletion-time waiting times. Slow, but driven with *identical* bin
    choices it reproduces the fast simulator exactly — the integration
    tests rely on this.

``capacity=None`` gives unbounded bins: CAPPED(∞, λ) ≡ GREEDY[1] of
[Berenbrink et al., PODC'16] (paper Section II).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.balls.ball import Ball, BallIdAllocator
from repro.balls.bin_array import BinArray
from repro.balls.buffer import BinBuffer
from repro.balls.pool import AgePool
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.kernels.round import positional_waits as _positional_waits
from repro.kernels.round import (
    resolve_capped_round,
    resolve_capped_round_serial,
    wait_histogram as _wait_histogram,
)
from repro.rng import resolve_rng
from repro.telemetry.runtime import PhaseClock, current as _telemetry_current
from repro.workloads.arrivals import ArrivalProcess, DeterministicArrivals

__all__ = ["CappedProcess", "ExactCappedSimulator"]

_EMPTY = np.zeros(0, dtype=np.int64)


class CappedProcess:
    """Fast vectorised CAPPED(c, λ) simulator.

    Parameters
    ----------
    n:
        Number of bins.
    capacity:
        Buffer size ``c`` (``None`` for CAPPED(∞, λ) ≡ GREEDY[1]).
    lam:
        Injection rate λ ∈ [0, 1); ``λn`` must be an integer unless a
        custom ``arrivals`` process is supplied.
    rng:
        Seed, generator, or :class:`~repro.rng.RngFactory`.
    arrivals:
        Optional custom arrival process; defaults to the paper's
        deterministic ``λn`` per round.
    initial_pool:
        Balls (labelled round 0) pre-loaded into the pool. The paper
        starts from an empty system; warm-starting at the mean-field
        equilibrium pool (see :mod:`repro.core.meanfield`) skips the
        ``Θ(1/(1−λ))``-round cold-start relaxation without changing any
        steady-state statistic.
    acceptance_order:
        ``"oldest"`` (paper's Algorithm 1, default) or ``"youngest"`` —
        an ablation switch. Oldest-first is the aging mechanism behind
        the waiting-time theorem; youngest-first keeps the same pool-size
        *dynamics* (acceptance counts depend only on request counts) but
        starves old balls, blowing up the waiting-time tail. The
        ``ablation_aging`` experiment quantifies this.
    kernel:
        ``"fused"`` (default) resolves all age buckets in one counting
        pass; ``"legacy"`` is the original per-bucket sweep, kept as the
        executable reference. Both consume the RNG identically and emit
        identical :class:`RoundRecord` sequences for the same seed.

    Examples
    --------
    >>> process = CappedProcess(n=64, capacity=2, lam=0.75, rng=1)
    >>> record = process.step()
    >>> record.arrivals
    48
    """

    def __init__(
        self,
        n: int,
        capacity: int | None,
        lam: float,
        rng=None,
        arrivals: ArrivalProcess | None = None,
        initial_pool: int = 0,
        acceptance_order: str = "oldest",
        kernel: str = "fused",
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if initial_pool < 0:
            raise ConfigurationError(f"initial_pool must be non-negative, got {initial_pool}")
        if acceptance_order not in ("oldest", "youngest"):
            raise ConfigurationError(
                f"acceptance_order must be 'oldest' or 'youngest', got {acceptance_order!r}"
            )
        if kernel not in ("fused", "legacy"):
            raise ConfigurationError(f"kernel must be 'fused' or 'legacy', got {kernel!r}")
        self.n = n
        #: Bin count at construction. ``n`` tracks the *live* membership
        #: (it changes under churn); checkpoints compare ``initial_n`` so
        #: a snapshot taken after a resize restores into a process built
        #: with the original configuration.
        self.initial_n = n
        self.capacity = capacity
        self.lam = lam
        self.acceptance_order = acceptance_order
        self.kernel = kernel
        self.rng = resolve_rng(rng, "capped")
        self.arrivals = arrivals if arrivals is not None else DeterministicArrivals(n=n, lam=lam)
        self.pool = AgePool()
        if initial_pool:
            self.pool.add(0, initial_pool)
        self.bins = BinArray(n, capacity)
        self.round = 0
        # Choice prefetch buffer (fused kernel only). Bounded integer
        # draws split across calls concatenate bit-identically to one
        # big call (the RNG-stream contract), so generating choices in
        # large blocks and slicing per round consumes the *same* words
        # in the *same* order as legacy's per-bucket draws — records
        # stay identical while the generator runs in long uninterrupted
        # C loops and the per-round draw becomes a zero-copy view.
        # Only safe while nothing else consumes this stream mid-block:
        # stochastic arrival processes share the generator, so the
        # buffer is enabled only for the paper's deterministic arrivals.
        self._choice_buf: np.ndarray | None = None
        self._choice_pos = 0
        self._choice_base: dict | None = None
        self._buffer_draws = type(self.arrivals) is DeterministicArrivals

    @property
    def pool_size(self) -> int:
        """Current pool size ``m(t)``."""
        return self.pool.size

    # -- elastic membership (repro.churn) -----------------------------------

    def _flush_choice_buffer(self) -> None:
        """Drop unspent prefetched bin choices.

        The buffer was drawn with modulus ``n``; after a resize those words
        would map to the wrong bin range (or out of range entirely). The
        unspent draws are simply discarded — resizes are deterministic
        schedule events, so both an uninterrupted run and a checkpoint
        resume discard the identical words and trajectories stay
        bit-identical.
        """
        self._choice_buf = None
        self._choice_pos = 0
        self._choice_base = None

    def grow_bins(self, count: int, capacity=None) -> np.ndarray:
        """Add ``count`` fresh empty bins mid-run (a join burst).

        Arrivals stay tied to the configured λ·n₀ (traffic is exogenous —
        it does not rise because servers joined), so the effective per-bin
        load λ·n₀/n(t) drops. Returns the new bins' indices.
        """
        added = self.bins.grow(count, capacity=capacity)
        self.n = self.bins.n
        self._flush_choice_buffer()
        return added

    def shrink_bins(self, indices, policy: str = "rehash") -> int:
        """Remove bins mid-run (a leave burst). Returns the displaced count.

        With the ``rehash`` policy the removed bins' queued balls re-enter
        the pool labelled with the *current* round: they are re-thrown
        from scratch next round, so their pool delay restarts (the
        positional representation keeps no per-ball identity to preserve
        accrued queue credit — a documented approximation, see
        ``docs/churn.md``). ``drop`` destroys them; ``drain`` requires the
        bins to be empty (see :meth:`seal_bins`).
        """
        displaced = self.bins.shrink(indices, policy=policy)
        self.n = self.bins.n
        self._flush_choice_buffer()
        if displaced and policy == "rehash":
            self.pool.add(self.round, displaced)
        return displaced

    def seal_bins(self, indices) -> None:
        """Seal bins for draining: no new acceptance, FIFO service continues."""
        self.bins.seal(indices)

    def unseal_bins(self, indices) -> None:
        """Reopen sealed bins for acceptance."""
        self.bins.unseal(indices)

    def step(self, choices: np.ndarray | None = None) -> RoundRecord:
        """Advance one round (Algorithm 1) and report it.

        Parameters
        ----------
        choices:
            Optional pre-drawn bin choices, one per thrown ball, ordered
            oldest ball first (new balls last). Used by the coupling and
            by deterministic tests; when omitted, choices are drawn from
            the process RNG (one draw per round in the fused kernel, one
            per age bucket in the legacy kernel — bit-identical streams,
            see ``docs/kernels.md``).
        """
        self.round += 1
        t = self.round

        # Telemetry attribution is read-only and RNG-free: the clock exists
        # only when a session is enabled, so the disabled cost is one
        # global read plus a handful of None checks per round.
        tel = _telemetry_current()
        clock = PhaseClock(tel, kernel=self.kernel) if tel is not None else None

        generated = self.arrivals.arrivals(t, self.rng)
        self.pool.add(t, generated)
        thrown = self.pool.size

        if choices is not None and len(choices) != thrown:
            raise ConfigurationError(
                f"injected choices must cover all {thrown} thrown balls, got {len(choices)}"
            )

        if self.kernel == "fused":
            accepted_total, wait_values, wait_counts, deleted, max_load = self._resolve_fused(
                t, thrown, choices, clock
            )
        else:
            accepted_total, waits = self._resolve_legacy(t, choices, clock)
            wait_values, wait_counts = _wait_histogram(waits)
            deleted = max_load = None
        if clock is not None:
            clock.lap("accept")

        if deleted is None:
            # Non-serial paths leave the FIFO deletion and the max-load
            # scan to the generic BinArray operations.
            deleted = self.bins.delete_one_each()
            max_load = int(self.bins.loads.max())
        if clock is not None:
            clock.lap("delete")

        record = RoundRecord(
            round=t,
            arrivals=generated,
            thrown=thrown,
            accepted=accepted_total,
            deleted=deleted,
            pool_size=self.pool.size,
            total_load=self.bins.total_load,
            max_load=max_load,
            wait_values=wait_values,
            wait_counts=wait_counts,
        )
        if clock is not None:
            clock.lap("collect")
            clock.finish()
        return record

    def _draw_choices(self, thrown: int) -> np.ndarray:
        """Bin choices for this round, served from the prefetch buffer.

        Returns a view into the current block when it has enough words
        left; otherwise drains the remainder, generates a fresh block
        (sized to cover several rounds), and stitches the two. The
        generator state captured just before each block draw, together
        with the in-block offset, is what :meth:`get_state` snapshots —
        a restore regenerates the block and resumes mid-buffer
        bit-identically.
        """
        if not self._buffer_draws:
            return self.rng.integers(0, self.n, size=thrown)
        buf, pos = self._choice_buf, self._choice_pos
        avail = buf.size - pos if buf is not None else 0
        if avail >= thrown:
            if buf is None:  # thrown == 0 before the first block exists
                return self.rng.integers(0, self.n, size=0)
            self._choice_pos = pos + thrown
            return buf[pos : pos + thrown]
        leftover = buf[pos:] if avail else None
        need = thrown - avail
        # ~4 rounds per block, clamped so huge-n runs don't hold tens of
        # megabytes of unspent randomness.
        block = max(min(max(4 * thrown, 1 << 14), 1 << 21), need)
        self._choice_base = self.rng.bit_generator.state
        fresh = self.rng.integers(0, self.n, size=block)
        self._choice_buf = fresh
        self._choice_pos = need
        if leftover is not None:
            return np.concatenate([leftover, fresh[:need]])
        return fresh[:need]

    def _resolve_fused(
        self,
        t: int,
        thrown: int,
        choices: np.ndarray | None,
        clock: PhaseClock | None = None,
    ) -> tuple[int, np.ndarray, np.ndarray, int | None, int | None]:
        """One-pass acceptance for all age buckets (see repro.kernels.round).

        Returns ``(accepted_total, wait_values, wait_counts, deleted,
        max_load)``. The wait *histogram* is returned, not per-ball waits:
        the kernels produce the histogram directly without ever expanding
        per-ball arrays. On the serial whole-round path — fault-free runs
        with finite ``c >= 2`` — the FIFO deletion is fused into the
        kernel and ``deleted``/``max_load`` come back filled; the other
        paths return ``None`` for both and the caller runs
        :meth:`BinArray.delete_one_each`. ``clock`` (telemetry only) marks
        the throw phase once the bin choices exist; the caller closes the
        accept phase.
        """
        if choices is None:
            choices = self._draw_choices(thrown)
        else:
            choices = np.asarray(choices, dtype=np.int64)
        if clock is not None:
            clock.lap("throw")

        serial = self.bins.serial_round_limit() if thrown else None
        if serial is not None:
            # Whole-round serial path: all per-bucket bookkeeping is
            # scalar, so hand the pool's plain-int lists straight to the
            # kernel — no label/count arrays are ever built.
            capacity_limit, hist_size = serial
            acc_counts = self.pool.counts()
            acc_ages = [t - label for label in self.pool.labels()]
            reversed_priority = self.acceptance_order == "youngest" and len(acc_counts) > 1
            if reversed_priority:
                chunks = np.split(choices, np.cumsum(acc_counts)[:-1])
                choices = np.concatenate(chunks[::-1])
                acc_counts.reverse()
                acc_ages.reverse()
            resolved = resolve_capped_round_serial(
                self.bins.loads,
                capacity_limit,
                choices,
                acc_counts,
                acc_ages,
                hist_size,
                initial_hist=self.bins.cached_load_hist(hist_size),
            )
            if resolved.accepted_total:
                accepted_per_bucket = resolved.accepted_per_bucket
                if reversed_priority:
                    accepted_per_bucket = accepted_per_bucket[::-1]
                self.pool.remove_bulk(accepted_per_bucket)
            self.bins.commit_round(resolved)
            return (
                resolved.accepted_total,
                resolved.wait_values,
                resolved.wait_counts,
                resolved.deleted,
                resolved.max_load,
            )

        # Choices arrive oldest-first (the coupling and test convention),
        # which is already the kernel's priority-major layout; only the
        # youngest-first ablation has to reorder its bucket chunks.
        labels, counts = self.pool.as_arrays()
        reversed_priority = self.acceptance_order == "youngest" and len(labels) > 1
        if reversed_priority:
            chunks = np.split(choices, np.cumsum(counts)[:-1])
            acc_choices = np.concatenate(chunks[::-1])
            acc_counts = counts[::-1]
            acc_ages = (t - labels)[::-1]
        else:
            acc_choices = choices
            acc_counts = counts
            acc_ages = t - labels

        resolved = resolve_capped_round(
            self.bins.free_slots(),
            self.bins.loads,
            acc_choices,
            acc_counts,
            acc_ages,
            sort_runs=False,
            need_runs=False,
        )
        if resolved.accepted_total:
            accepted_per_bucket = resolved.accepted_per_bucket
            if reversed_priority:
                accepted_per_bucket = accepted_per_bucket[::-1]
            self.bins.commit_accepted(resolved.accepted_per_key, resolved.accepted_total)
            self.pool.remove_bulk(accepted_per_bucket)
        if resolved.wait_hist is not None:
            return resolved.accepted_total, *resolved.wait_hist, None, None
        return resolved.accepted_total, *_wait_histogram(resolved.waits), None, None

    def _resolve_legacy(
        self,
        t: int,
        choices: np.ndarray | None,
        clock: PhaseClock | None = None,
    ) -> tuple[int, np.ndarray]:
        """The original per-bucket sweep — the executable reference."""
        bucket_slices: list[tuple[int, np.ndarray]] = []
        offset = 0
        for label, count in list(self.pool.buckets()):
            if choices is None:
                bucket_choices = self.rng.integers(0, self.n, size=count)
            else:
                bucket_choices = choices[offset : offset + count]
                offset += count
            bucket_slices.append((label, bucket_choices))
        if clock is not None:
            clock.lap("throw")
        if self.acceptance_order == "youngest":
            bucket_slices.reverse()

        wait_chunks: list[np.ndarray] = []
        accepted_total = 0
        for label, bucket_choices in bucket_slices:
            requests = np.bincount(bucket_choices, minlength=self.n)
            accepted = np.minimum(requests, self.bins.free_slots())
            bucket_accepted = int(accepted.sum())
            if bucket_accepted:
                nonzero = np.nonzero(accepted)[0]
                # Queue position of the first accepted ball is the bin's
                # current load; waiting time = (t − label) + position.
                starts = (t - label) + self.bins.loads[nonzero]
                wait_chunks.append(_positional_waits(starts, accepted[nonzero]))
                self.bins.accept(requests)
                self.pool.remove(label, bucket_accepted)
                accepted_total += bucket_accepted

        waits = np.concatenate(wait_chunks) if wait_chunks else _EMPTY
        return accepted_total, waits

    def check_invariants(self) -> None:
        """Verify pool and bin-state consistency."""
        self.pool.check_invariants()
        self.bins.check_invariants()
        if self.bins.n != self.n:
            raise InvariantViolation(
                f"process n={self.n} out of sync with bin membership n={self.bins.n}"
            )
        oldest = self.pool.oldest_label
        if oldest is not None and oldest > self.round:
            raise InvariantViolation(
                f"pool contains balls from future round {oldest} (now {self.round})"
            )

    def get_state(self) -> dict:
        """Checkpoint the full process state (including the RNG).

        The snapshot is a plain dict of JSON-able values plus the numpy
        bit-generator state; restoring it with :meth:`set_state` resumes
        the *identical* trajectory — useful for long paper-profile runs
        and for record/replay debugging.
        """
        state = {
            "round": self.round,
            "pool": self.pool.get_state(),
            "bins": self.bins.get_state(),
            "rng": self.rng.bit_generator.state,
        }
        if self._choice_buf is not None and self._choice_pos < self._choice_buf.size:
            # Mid-buffer: snapshot the generator state from *before* the
            # block draw plus the offset consumed, so the restore can
            # regenerate the identical block and resume inside it —
            # without serialising the unspent randomness itself.
            state["rng"] = self._choice_base
            state["choice_block"] = int(self._choice_buf.size)
            state["choice_pos"] = int(self._choice_pos)
        return state

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (same initial-n/c/λ process).

        Membership is adopted from the snapshot: restoring a state taken
        after churn resized the bins updates ``n`` to match (``initial_n``
        is what checkpoint compatibility is checked against). The live
        ``n`` must be adopted *before* the choice block regenerates below —
        the block's modulus is the snapshot's bin count.
        """
        self.round = int(state["round"])
        self.pool.set_state(state["pool"])
        self.bins.set_state(state["bins"])
        self.n = self.bins.n
        self.rng.bit_generator.state = state["rng"]
        block = int(state.get("choice_block", 0))
        if block:
            self._choice_base = self.rng.bit_generator.state
            self._choice_buf = self.rng.integers(0, self.n, size=block)
            self._choice_pos = int(state["choice_pos"])
        else:
            self._choice_buf = None
            self._choice_pos = 0
            self._choice_base = None
        self.check_invariants()


class ExactCappedSimulator:
    """Per-ball reference implementation of CAPPED(c, λ).

    Keeps every ball as an object, every bin as a real FIFO queue, and
    records a ball's waiting time at its actual deletion round. Use for
    validation and small-scale studies; it is orders of magnitude slower
    than :class:`CappedProcess`.
    """

    def __init__(
        self,
        n: int,
        capacity: int | None,
        lam: float,
        rng=None,
        arrivals: ArrivalProcess | None = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        self.n = n
        self.capacity = capacity
        self.lam = lam
        self.rng = resolve_rng(rng, "capped-exact")
        self.arrivals = arrivals if arrivals is not None else DeterministicArrivals(n=n, lam=lam)
        cap = capacity if capacity is not None else float("inf")
        self.bin_buffers = [BinBuffer(cap) for _ in range(n)]
        self.pool: list[Ball] = []  # kept sorted oldest-first by construction
        self._ids = BallIdAllocator()
        self.round = 0

    @property
    def pool_size(self) -> int:
        """Current pool size ``m(t)``."""
        return len(self.pool)

    def step(self, choices: np.ndarray | None = None) -> RoundRecord:
        """Advance one round; semantics identical to :class:`CappedProcess`.

        ``choices`` (optional) must list one bin per pool ball in pool
        order (oldest first, new balls last) — the same convention as the
        fast simulator, enabling exact trajectory comparisons.
        """
        self.round += 1
        t = self.round

        generated = self.arrivals.arrivals(t, self.rng)
        self.pool.extend(self._ids.make_batch(t, generated))
        thrown = len(self.pool)

        if choices is None:
            choices = self.rng.integers(0, self.n, size=thrown)
        elif len(choices) != thrown:
            raise ConfigurationError(
                f"injected choices must cover all {thrown} thrown balls, got {len(choices)}"
            )

        requests_per_bin: dict[int, list[Ball]] = defaultdict(list)
        for ball, bin_index in zip(self.pool, choices):
            requests_per_bin[int(bin_index)].append(ball)

        accepted_serials: set[int] = set()
        for bin_index, requesting in requests_per_bin.items():
            buffer = self.bin_buffers[bin_index]
            # The pool is oldest-first, so `requesting` is already sorted;
            # BinBuffer.accept re-sorts defensively, which is a no-op here.
            candidates = sorted(requesting)
            free = buffer.free_slots
            take = len(candidates) if free == float("inf") else min(len(candidates), int(free))
            for ball in candidates[:take]:
                buffer.push(ball)
                accepted_serials.add(ball.serial)

        if accepted_serials:
            self.pool = [b for b in self.pool if b.serial not in accepted_serials]

        waits: list[int] = []
        deleted = 0
        for buffer in self.bin_buffers:
            ball = buffer.delete_first()
            if ball is not None:
                deleted += 1
                waits.append(ball.age(t))

        if waits:
            wait_values, wait_counts = np.unique(
                np.asarray(waits, dtype=np.int64), return_counts=True
            )
        else:
            wait_values, wait_counts = _EMPTY, _EMPTY

        loads = [b.load for b in self.bin_buffers]
        return RoundRecord(
            round=t,
            arrivals=generated,
            thrown=thrown,
            accepted=len(accepted_serials),
            deleted=deleted,
            pool_size=len(self.pool),
            total_load=sum(loads),
            max_load=max(loads) if loads else 0,
            wait_values=wait_values,
            wait_counts=wait_counts,
        )

    def drain(self, max_rounds: int = 100_000) -> list[int]:
        """Run with arrivals suppressed until the system is empty.

        Returns all waiting times observed while draining. Used by tests to
        compare complete waiting-time multisets against the fast simulator.
        """
        saved = self.arrivals
        self.arrivals = DeterministicArrivals(n=self.n, lam=0.0)
        waits: list[int] = []
        try:
            for _ in range(max_rounds):
                if not self.pool and all(b.load == 0 for b in self.bin_buffers):
                    return waits
                record = self.step()
                for value, count in zip(record.wait_values, record.wait_counts):
                    waits.extend([int(value)] * int(count))
        finally:
            self.arrivals = saved
        raise InvariantViolation(f"system failed to drain within {max_rounds} rounds")

    def check_invariants(self) -> None:
        """Verify buffer capacities and pool ordering."""
        for buffer in self.bin_buffers:
            buffer.check_invariants()
        labels = [ball.label for ball in self.pool]
        if labels != sorted(labels):
            raise InvariantViolation("exact pool is not ordered oldest-first")
