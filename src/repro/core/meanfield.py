"""Mean-field (fluid-limit) analysis of CAPPED(c, λ).

The related work the paper builds on analyses similar infinite processes
with differential-equation / mean-field methods (Berenbrink et al.,
SPAA'00; Mitzenmacher, TPDS'01). This module applies the same technique to
CAPPED(c, λ): as n → ∞, the number of balls a single bin receives in a
round where ``ν`` balls are thrown is Poisson(ν/n), bins decouple, and a
single bin follows a (c+1)-state Markov chain over its start-of-round load:

    L' = max(0, min(c, L + A) − 1),     A ~ Poisson(ν/n).

In equilibrium the per-bin accept rate must equal the injection rate λ
(every generated ball is eventually served), which pins down the
equilibrium throw intensity ``ν*/n`` and with it

* the equilibrium normalized pool size ``ν*/n − λ`` (Figure 4's y-axis),
* the stationary load distribution, and
* the mean waiting time via Little's law.

These closed-loop predictions serve three purposes: an independent check
of the simulator (they agree to within Monte-Carlo noise), instant
warm-starts that skip the ``Θ(1/(1−λ))``-round relaxation of a cold start,
and smooth reference curves for the experiment plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "poisson_pmf",
    "bin_transition_matrix",
    "stationary_loads",
    "accept_rate",
    "equilibrium_throw_intensity",
    "MeanFieldEquilibrium",
    "equilibrium",
    "mixture_equilibrium_pool",
]


def poisson_pmf(rate: float, kmax: int) -> np.ndarray:
    """Poisson(rate) pmf on 0..kmax with the tail mass folded into kmax.

    Folding the tail keeps the distribution normalised, which the chain
    iteration below relies on; ``kmax`` is always chosen large enough that
    the folded mass is negligible for the loads (everything ≥ c behaves
    identically anyway, as ``min(c, L + A)`` saturates).
    """
    if rate < 0:
        raise ConfigurationError(f"rate must be non-negative, got {rate}")
    if kmax < 0:
        raise ConfigurationError(f"kmax must be non-negative, got {kmax}")
    pmf = np.zeros(kmax + 1)
    log_term = -rate  # log Pr[A = 0]
    log_rate = math.log(rate) if rate > 0 else -math.inf
    for k in range(kmax + 1):
        pmf[k] = math.exp(log_term)
        log_term += log_rate - math.log(k + 1)
    pmf[kmax] += max(0.0, 1.0 - pmf.sum())
    return pmf


def _arrival_pmf(intensity: float, c: int) -> np.ndarray:
    # Arrivals beyond c + load always saturate the bin, so a modest cushion
    # past both c and the bulk of the Poisson suffices.
    kmax = int(max(c + 30, intensity + 10.0 * math.sqrt(max(intensity, 1.0)) + 20))
    return poisson_pmf(intensity, kmax)


def bin_transition_matrix(intensity: float, c: int) -> np.ndarray:
    """One-round transition matrix of the single-bin load chain.

    State = start-of-round load 0..c; a round applies
    ``L' = max(0, min(c, L + A) − 1)`` with ``A ~ Poisson(intensity)``.
    """
    if c < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {c}")
    pmf = _arrival_pmf(intensity, c)
    transition = np.zeros((c + 1, c + 1))
    for load in range(c + 1):
        for arrivals, probability in enumerate(pmf):
            after = min(c, load + arrivals)
            transition[load, max(0, after - 1)] += probability
    return transition


def stationary_loads(intensity: float, c: int) -> np.ndarray:
    """Stationary start-of-round load distribution of the single-bin chain.

    Parameters
    ----------
    intensity:
        Normalised throw intensity ``ν/n`` (expected arrivals per bin).
    c:
        Bin capacity.

    Returns
    -------
    numpy.ndarray
        Probability vector over loads 0..c (exact linear solve via
        :func:`repro.stats.markov.stationary_distribution`).
    """
    from repro.stats.markov import stationary_distribution

    return stationary_distribution(bin_transition_matrix(intensity, c))


def accept_rate(intensity: float, c: int) -> float:
    """Expected balls accepted per bin per round in the stationary chain.

    Equals ``E[min(A, c − L)]`` under the stationary load distribution;
    the equilibrium condition is ``accept_rate(ν*/n, c) = λ``.
    """
    dist = stationary_loads(intensity, c)
    pmf = _arrival_pmf(intensity, c)
    arrivals = np.arange(len(pmf))
    total = 0.0
    for load in range(c + 1):
        total += dist[load] * float((pmf * np.minimum(arrivals, c - load)).sum())
    return total


def equilibrium_throw_intensity(c: int, lam: float, tol: float = 1e-10) -> float:
    """Solve ``accept_rate(ν/n, c) = λ`` for the throw intensity ``ν/n``.

    The accept rate is strictly increasing in the intensity (more arrivals
    can only increase ``min(A, c − L)`` in distribution), so bisection is
    exact. The bracket upper end ``ln(1/(1−λ)) + c + 2`` always suffices:
    already for c = 1 the solution is exactly ``ln(1/(1−λ))``.
    """
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must lie in [0, 1), got {lam}")
    if c < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {c}")
    if lam == 0.0:
        return 0.0
    low = lam
    high = math.log(1.0 / (1.0 - lam)) + c + 2.0
    for _ in range(200):
        mid = (low + high) / 2
        if accept_rate(mid, c) > lam:
            high = mid
        else:
            low = mid
        if high - low < tol:
            break
    return (low + high) / 2


@dataclass(frozen=True, slots=True)
class MeanFieldEquilibrium:
    """Mean-field equilibrium of CAPPED(c, λ).

    Attributes
    ----------
    c, lam:
        Parameters of the process.
    throw_intensity:
        Equilibrium ``ν*/n`` — expected thrown balls per bin per round.
    normalized_pool:
        Equilibrium pool size divided by n: ``ν*/n − λ``.
    load_distribution:
        Stationary start-of-round load distribution over 0..c.
    mean_load:
        Expected start-of-round bin load.
    mean_wait:
        Mean waiting time (age at deletion) predicted via Little's law:
        ``(pool + mean_load·n)/(λn)``. A ball with waiting time ``w``
        appears in exactly ``w`` end-of-round system snapshots (a ball
        served in its arrival round appears in none), so the time-average
        system size equals ``λn·E[wait]`` with no off-by-one.
    """

    c: int
    lam: float
    throw_intensity: float
    normalized_pool: float
    load_distribution: np.ndarray
    mean_load: float
    mean_wait: float

    def pool_size(self, n: int) -> int:
        """Equilibrium pool size for a concrete n (for warm starts)."""
        return max(0, int(round(self.normalized_pool * n)))


def mixture_equilibrium_pool(
    capacity_shares: dict[int, float],
    lam: float,
    tol: float = 1e-10,
) -> float:
    """Equilibrium normalized pool for *heterogeneous* bin capacities.

    Bins decouple in the fluid limit even when their capacities differ: a
    fraction ``share_k`` of bins with capacity ``c_k`` contributes
    ``share_k · accept_rate(ν/n, c_k)`` to the per-bin accept rate, and
    equilibrium requires the mixture rate to equal λ. Used by the
    ``heterogeneous_capacity`` experiment to predict which capacity
    layout of a fixed total budget minimises the pool.

    Parameters
    ----------
    capacity_shares:
        Mapping ``{capacity: fraction of bins}``; fractions must sum to 1.
    lam:
        Injection rate.

    Returns
    -------
    float
        Equilibrium pool size divided by n (``ν*/n − λ``).
    """
    if not capacity_shares:
        raise ConfigurationError("need at least one capacity class")
    total_share = sum(capacity_shares.values())
    if abs(total_share - 1.0) > 1e-9:
        raise ConfigurationError(f"shares must sum to 1, got {total_share}")
    if any(c < 1 for c in capacity_shares):
        raise ConfigurationError("capacities must be at least 1")
    if any(share < 0 for share in capacity_shares.values()):
        raise ConfigurationError("shares must be non-negative")
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must lie in [0, 1), got {lam}")
    if lam == 0.0:
        return 0.0

    def mixture_rate(intensity: float) -> float:
        return sum(
            share * accept_rate(intensity, c) for c, share in capacity_shares.items() if share > 0
        )

    low = lam
    high = math.log(1.0 / (1.0 - lam)) + max(capacity_shares) + 2.0
    for _ in range(200):
        mid = (low + high) / 2
        if mixture_rate(mid) > lam:
            high = mid
        else:
            low = mid
        if high - low < tol:
            break
    return max(0.0, (low + high) / 2 - lam)


def equilibrium(c: int, lam: float) -> MeanFieldEquilibrium:
    """Compute the full mean-field equilibrium for CAPPED(c, λ)."""
    intensity = equilibrium_throw_intensity(c, lam)
    dist = stationary_loads(intensity, c)
    mean_load = float(np.arange(c + 1) @ dist)
    normalized_pool = max(0.0, intensity - lam)
    # Little's law: time-average balls in system / throughput. A ball of
    # waiting time w is present in exactly w end-of-round snapshots, so
    # E[system]/λ gives the mean waiting time directly.
    mean_wait = (normalized_pool + mean_load) / lam if lam > 0 else 0.0
    return MeanFieldEquilibrium(
        c=c,
        lam=lam,
        throw_intensity=intensity,
        normalized_pool=normalized_pool,
        load_distribution=dist,
        mean_load=mean_load,
        mean_wait=mean_wait,
    )
