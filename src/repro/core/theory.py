"""Closed-form bounds from the paper.

Implements, as plain functions of ``(c, λ, n)``:

* the threshold ``m*`` used by the MODCAPPED coupling
  (Section III-A for c = 1, Section IV-A for general c),
* the pool-size and waiting-time bounds of Theorems 1 and 2,
* the empirical reference curves the paper overlays on Figures 4 and 5
  (``1/c·ln(1/(1−λ)) + 1`` and ``ln(1/(1−λ))/c + log log n + c``),
* the sweet-spot capacity ``c* = Θ(√ln(1/(1−λ)))`` (Abstract), and
* the waiting-time scales of the PODC'16 leaky-bins baselines for
  comparison.

All bounds are stated exactly as derived in the paper, with the
unavoidable ``O(1)``/``O(c)`` terms exposed as explicit keyword arguments
defaulting to the smallest values consistent with the derivations.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "log_inverse_gap",
    "loglog",
    "m_star",
    "thm1_pool_bound",
    "thm1_wait_bound",
    "thm2_pool_bound",
    "thm2_wait_bound",
    "empirical_pool_curve",
    "empirical_wait_curve",
    "sweet_spot_c",
    "pool_bound_failure_probability",
    "wait_bound_failure_probability",
    "drain_stage_rounds",
    "LEMMA4_ROUNDS",
    "final_stage_rounds",
    "wait_bound_decomposition",
    "greedy_one_choice_wait_bound",
    "greedy_two_choice_wait_bound",
]

_ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


def _check(lam: float, n: int | None = None, c: int | None = None) -> None:
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must lie in [0, 1), got {lam}")
    if n is not None and n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    if c is not None and c < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {c}")


def log_inverse_gap(lam: float) -> float:
    """The recurring quantity ``ln(1/(1−λ))``.

    Grows from 0 (λ = 0) to ``ln n`` (λ = 1 − 1/n); the paper's bounds are
    all phrased in terms of it.
    """
    _check(lam)
    return math.log(1.0 / (1.0 - lam))


def loglog(n: int) -> float:
    """``log₂ log₂ n``, clamped below at 0 (defined for n ≥ 2)."""
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    inner = math.log2(n)
    return max(0.0, math.log2(inner)) if inner >= 1.0 else 0.0


def m_star(c: int, lam: float, n: int, variant: str = "auto") -> float:
    """The coupling threshold ``m*`` for MODCAPPED(c, λ).

    Parameters
    ----------
    variant:
        ``"warmup"`` — Section III's value for unit capacity,
        ``m* = ln(1/(1−λ))·n + 2n`` (only valid for c = 1);
        ``"general"`` — Section IV's value,
        ``m* = 2/c·ln(1/(1−λ))·n + 6c·n``;
        ``"auto"`` (default) — warmup when c = 1, general otherwise,
        matching how the paper instantiates the coupled process.
    """
    _check(lam, n, c)
    if variant == "auto":
        variant = "warmup" if c == 1 else "general"
    if variant == "warmup":
        if c != 1:
            raise ConfigurationError("the warm-up m* is only defined for c = 1")
        return log_inverse_gap(lam) * n + 2.0 * n
    if variant == "general":
        return 2.0 / c * log_inverse_gap(lam) * n + 6.0 * c * n
    raise ConfigurationError(f"unknown m* variant {variant!r}")


def thm1_pool_bound(lam: float, n: int) -> float:
    """Theorem 1(1): w.p. ≥ 1 − 2^{−2n}, ``m(t) < 2·ln(1/(1−λ))·n + 4n``.

    Equal to twice the warm-up ``m*``.
    """
    _check(lam, n)
    return 2.0 * log_inverse_gap(lam) * n + 4.0 * n


def thm1_wait_bound(lam: float, n: int, additive_constant: float = 19.0) -> float:
    """Theorem 1(2): w.p. ≥ 1 − n^{−2} the waiting time is at most
    ``(2·ln(1/(1−λ)) + 4)/(1 − 1/e) + log log n + O(1)``.

    ``additive_constant`` stands for the ``O(1)`` term; the proof's
    explicit contribution is the 19 extra rounds of Lemma 4 (plus an
    unoptimised constant from Lemma 5), so 19 is the default.
    """
    _check(lam, n)
    return (2.0 * log_inverse_gap(lam) + 4.0) / _ONE_MINUS_INV_E + loglog(n) + additive_constant


def thm2_pool_bound(c: int, lam: float, n: int) -> float:
    """Theorem 2(1): w.p. ≥ 1 − 2^{−2n},
    ``m(t) < 4/c·ln(1/(1−λ))·n + O(c·n)``.

    Returned as twice the general ``m*`` (the proof shows the pool stays
    below ``2m*``), i.e. with the ``O(c·n)`` term instantiated as ``12c·n``.
    """
    _check(lam, n, c)
    return 2.0 * m_star(c, lam, n, variant="general")


def thm2_wait_bound(
    c: int,
    lam: float,
    n: int,
    additive_constant: float = 19.0,
) -> float:
    """Theorem 2(2): w.p. ≥ 1 − n^{−2} the waiting time is at most
    ``4·ln(1/(1−λ))/(c·(1−1/e)) + log log n + O(c)``.

    Derivation (Section IV-C): pool drains at rate ``n − n/e`` per round
    (Lemma 3 applied to the Theorem 2(1) pool bound), giving
    ``Δ = 2m*/(n(1−1/e))``; then 19 rounds (Lemma 4), ``log log n + O(1)``
    rounds (Lemma 5), and up to ``c`` rounds inside a buffer. The ``O(c)``
    term is therefore instantiated as ``12c/(1−1/e) + c``.
    """
    _check(lam, n, c)
    drain_rounds = (2.0 * m_star(c, lam, n, variant="general") / n) / _ONE_MINUS_INV_E
    return drain_rounds + additive_constant + loglog(n) + c


def empirical_pool_curve(c: int, lam: float) -> float:
    """Section V's dashed Figure 4 reference: ``1/c·ln(1/(1−λ)) + 1``.

    This is the *normalized* pool size (pool divided by n) the simulations
    track — the theoretical bound without its factor of four.
    """
    _check(lam, c=c)
    return log_inverse_gap(lam) / c + 1.0


def empirical_wait_curve(c: int, lam: float, n: int) -> float:
    """Section V's dashed Figure 5 reference:
    ``ln(1/(1−λ))/c + log log n + c``."""
    _check(lam, n, c)
    return log_inverse_gap(lam) / c + loglog(n) + c


def sweet_spot_c(lam: float, integer: bool = True) -> float | int:
    """The capacity minimising the waiting-time scale.

    The waiting-time bound behaves as ``L/c + c`` with
    ``L = ln(1/(1−λ))`` (up to constants), minimised at ``c* = √L`` —
    the abstract's ``Θ(√log(1/(1−λ)))`` sweet spot. With ``integer=True``
    the better of ``floor`` and ``ceil`` of ``√L`` (at least 1) under the
    empirical curve is returned.
    """
    _check(lam)
    gap = log_inverse_gap(lam)
    continuous = math.sqrt(gap)
    if not integer:
        return continuous
    lo = max(1, math.floor(continuous))
    hi = max(1, math.ceil(continuous))

    def score(c: int) -> float:
        return gap / c + c

    return lo if score(lo) <= score(hi) else hi


def pool_bound_failure_probability(n: int) -> float:
    """Failure probability of Theorems 1(1)/2(1): ``2^{−2n}``.

    Underflows to 0.0 for realistic n, which is the honest answer.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    try:
        return 2.0 ** (-2 * n)
    except OverflowError:  # pragma: no cover
        return 0.0


def wait_bound_failure_probability(n: int) -> float:
    """Failure probability of Theorems 1(2)/2(2): ``n^{−2}``."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    return float(n) ** -2


def drain_stage_rounds(pool_size: float, n: int) -> float:
    """Lemma 3's Δ: rounds to shrink a pool to 2n at rate ``n − n/e``.

    ``Δ = m(t)/(n − n/e)`` — while more than 2n balls compete, each round
    w.h.p. more than ``n − n/e`` bins receive (and hence delete) a ball.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if pool_size < 0:
        raise ConfigurationError(f"pool size must be non-negative, got {pool_size}")
    return pool_size / (n * _ONE_MINUS_INV_E)


#: Lemma 4's constant: rounds to shrink the survivors from 2n to n/(2e),
#: deleting at least n/10 per round.
LEMMA4_ROUNDS = 19


def final_stage_rounds(n: int, additive_constant: float = 1.0) -> float:
    """Lemma 5: ``log log n + O(1)`` rounds clear the last n/(2e) survivors.

    The layered-induction stage (the GREEDY[2]-style doubling argument of
    Azar et al., Theorem 4).
    """
    return loglog(n) + additive_constant


def wait_bound_decomposition(c: int, lam: float, n: int) -> dict[str, float]:
    """Stage-by-stage composition of the Theorem 2 waiting-time bound.

    Returns the contribution of each proof stage — useful for seeing which
    term dominates at a given (c, λ, n):

    * ``drain``   — Lemma 3 applied to the Theorem 2(1) pool bound,
    * ``bridge``  — Lemma 4's 19 rounds,
    * ``final``   — Lemma 5's ``log log n + O(1)``,
    * ``buffer``  — up to c rounds inside a bin's buffer (Section IV-C).

    The values sum to :func:`thm2_wait_bound` (with its defaults).
    """
    _check(lam, n, c)
    return {
        "drain": drain_stage_rounds(thm2_pool_bound(c, lam, n), n),
        "bridge": float(LEMMA4_ROUNDS),
        "final": final_stage_rounds(n, additive_constant=0.0),
        "buffer": float(c),
    }


def greedy_one_choice_wait_bound(lam: float, n: int) -> float:
    """Waiting-time scale of PODC'16 GREEDY[1] (leaky bins):
    ``Θ(1/(1−λ)·log(n/(1−λ)))``. Returned without hidden constants —
    use for shape comparisons only."""
    _check(lam, n)
    return (1.0 / (1.0 - lam)) * math.log(n / (1.0 - lam))


def greedy_two_choice_wait_bound(lam: float, n: int) -> float:
    """Waiting-time scale of PODC'16 GREEDY[2] (leaky bins):
    ``Θ(log(n/(1−λ)))``. Returned without hidden constants."""
    _check(lam, n)
    return math.log(n / (1.0 - lam))
