"""The paper's primary contribution.

* :mod:`repro.core.capped` — the CAPPED(c, λ) process (Algorithm 1), in a
  fast vectorised form and an exact per-ball reference form.
* :mod:`repro.core.modcapped` — the coupled analysis process
  MODCAPPED(c, λ) with red/blue time-sliced buffers (Section IV-A).
* :mod:`repro.core.coupling` — the paper's coupling of the two processes,
  used to validate the stochastic-dominance lemmas (Lemmas 1 and 6).
* :mod:`repro.core.theory` — closed-form bounds from Theorems 1 and 2 and
  the empirical reference curves of Section V.
"""

from repro.core import fluid, meanfield
from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.core.coupling import CoupledRun, run_coupled
from repro.core.modcapped import ModCappedProcess, buffer_capacity
from repro.core.theory import (
    empirical_pool_curve,
    empirical_wait_curve,
    greedy_one_choice_wait_bound,
    greedy_two_choice_wait_bound,
    loglog,
    m_star,
    sweet_spot_c,
    thm1_pool_bound,
    thm1_wait_bound,
    thm2_pool_bound,
    thm2_wait_bound,
)

__all__ = [
    "meanfield",
    "fluid",
    "CappedProcess",
    "ExactCappedSimulator",
    "ModCappedProcess",
    "buffer_capacity",
    "CoupledRun",
    "run_coupled",
    "m_star",
    "loglog",
    "thm1_pool_bound",
    "thm1_wait_bound",
    "thm2_pool_bound",
    "thm2_wait_bound",
    "empirical_pool_curve",
    "empirical_wait_curve",
    "sweet_spot_c",
    "greedy_one_choice_wait_bound",
    "greedy_two_choice_wait_bound",
]
