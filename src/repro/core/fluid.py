"""Transient fluid-limit trajectories of CAPPED(c, λ).

:mod:`repro.core.meanfield` computes the *equilibrium* of the fluid limit;
this module integrates its *transient*. The normalised system state is the
pair (pool/n, per-bin load distribution); one round of the fluid dynamics
is deterministic:

1. the throw intensity is ``ν/n = pool/n + λ``;
2. the load distribution advances one step of the single-bin chain with
   Poisson(ν/n) arrivals (:func:`repro.core.meanfield.bin_transition_matrix`);
3. the pool update is ``pool' = ν/n − accepted-per-bin``.

Two standard uses:

* **Cold-start prediction.** From the empty state the trajectory shows the
  pool filling toward equilibrium with the ``Θ(1/(1−λ))`` time constant
  (the linearised drain rate near equilibrium is ``≈ 1 − λ`` per round) —
  this is what justifies the burn-in heuristics in
  :mod:`repro.engine.stability`, and the simulation follows it closely.
* **Spike response.** From an inflated pool the trajectory reproduces the
  Lemma 3 drain at rate ``1 − e^{−ν/n}`` per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meanfield import _arrival_pmf, bin_transition_matrix, equilibrium
from repro.errors import ConfigurationError

__all__ = ["FluidTrajectory", "integrate", "relaxation_rounds"]


@dataclass(frozen=True)
class FluidTrajectory:
    """Deterministic fluid trajectory of CAPPED(c, λ).

    Attributes
    ----------
    pool:
        Normalised pool size per round (index 0 = initial state).
    mean_load:
        Mean per-bin load per round.
    accept_rate:
        Balls accepted per bin in each round (length ``len(pool) − 1``).
    """

    c: int
    lam: float
    pool: np.ndarray
    mean_load: np.ndarray
    accept_rate: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of integrated rounds."""
        return len(self.pool) - 1

    def rounds_to_reach(self, pool_level: float, from_above: bool = True) -> int | None:
        """First round at which the pool crosses ``pool_level``.

        ``from_above`` selects the crossing direction (draining vs
        filling); returns ``None`` if never crossed.
        """
        for t, value in enumerate(self.pool):
            if (value <= pool_level) if from_above else (value >= pool_level):
                return t
        return None


def _step_accept_rate(load_dist: np.ndarray, intensity: float, c: int) -> float:
    pmf = _arrival_pmf(intensity, c)
    arrivals = np.arange(len(pmf))
    total = 0.0
    for load in range(c + 1):
        total += load_dist[load] * float((pmf * np.minimum(arrivals, c - load)).sum())
    return total


def integrate(
    c: int,
    lam: float,
    rounds: int,
    initial_pool: float = 0.0,
    initial_loads: np.ndarray | None = None,
) -> FluidTrajectory:
    """Integrate the fluid dynamics for ``rounds`` rounds.

    Parameters
    ----------
    c, lam:
        Process parameters.
    rounds:
        Rounds to integrate.
    initial_pool:
        Normalised starting pool (0 = the paper's empty start).
    initial_loads:
        Starting load distribution over 0..c (defaults to all-empty).
    """
    if c < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {c}")
    if not 0.0 <= lam < 1.0:
        raise ConfigurationError(f"lambda must lie in [0, 1), got {lam}")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be positive, got {rounds}")
    if initial_pool < 0:
        raise ConfigurationError(f"initial_pool must be non-negative, got {initial_pool}")
    if initial_loads is None:
        loads = np.zeros(c + 1)
        loads[0] = 1.0
    else:
        loads = np.asarray(initial_loads, dtype=float)
        if loads.shape != (c + 1,) or abs(loads.sum() - 1.0) > 1e-9 or np.any(loads < 0):
            raise ConfigurationError("initial_loads must be a distribution over 0..c")

    pools = [float(initial_pool)]
    mean_loads = [float(np.arange(c + 1) @ loads)]
    accept_rates = []
    pool = float(initial_pool)
    for _ in range(rounds):
        intensity = pool + lam
        accepted = _step_accept_rate(loads, intensity, c)
        accept_rates.append(accepted)
        pool = max(0.0, intensity - accepted)
        loads = loads @ bin_transition_matrix(intensity, c)
        pools.append(pool)
        mean_loads.append(float(np.arange(c + 1) @ loads))

    return FluidTrajectory(
        c=c,
        lam=lam,
        pool=np.asarray(pools),
        mean_load=np.asarray(mean_loads),
        accept_rate=np.asarray(accept_rates),
    )


def relaxation_rounds(c: int, lam: float, fraction: float = 0.95, max_rounds: int = 500_000) -> int:
    """Rounds for a cold start to fill to ``fraction`` of the equilibrium pool.

    The fluid-limit answer to "how long must I burn in from empty?" —
    near λ → 1 this scales like ``Θ(1/(1−λ))`` (the linearised fill rate
    is ``e^{−ν*/n} = Θ(1−λ)`` per round), which is why the cold-start
    burn-in heuristic carries a ``1/(1−λ)`` term.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(f"fraction must lie in (0, 1), got {fraction}")
    target = equilibrium(c, lam).normalized_pool * fraction
    if target <= 0.0:
        return 0
    horizon = 256
    while horizon <= max_rounds:
        trajectory = integrate(c, lam, rounds=horizon)
        hit = trajectory.rounds_to_reach(target, from_above=False)
        if hit is not None and hit > 0:
            return hit
        horizon *= 4
    raise ConfigurationError(
        f"relaxation did not reach {fraction:.0%} of equilibrium within {max_rounds} rounds"
    )
