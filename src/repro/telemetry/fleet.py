"""Fleet telemetry aggregation: piggybacked snapshots and registry merge.

Workers with telemetry enabled attach a compressed
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` to their
heartbeat and ``complete`` frames (``zlib`` + base64 of the compact JSON
— a typical snapshot compresses to a few hundred bytes, well under the
frame cap). The broker keeps the latest snapshot per worker and
:func:`merge_fleet_snapshots` folds them into one fleet-wide snapshot:

* every worker series gains a ``worker`` label, so per-worker breakdowns
  survive the merge (``round_seconds{kernel="fused",worker="w-ab12"}``);
* counter families additionally get an aggregate series per base label
  set (values summed across workers);
* histogram families get an aggregate with **exact** ``count/sum/min/max``
  (these merge losslessly); quantiles are per-worker only — reservoir
  quantiles cannot be merged exactly, and a wrong p99 is worse than none.

The merged snapshot renders through the ordinary Prometheus exporter
(:func:`repro.telemetry.sinks.render_prometheus`) into the broker's
``fleet.prom`` textfile.
"""

from __future__ import annotations

import base64
import binascii
import json
import zlib
from typing import Any

__all__ = [
    "compress_snapshot",
    "decompress_snapshot",
    "merge_fleet_snapshots",
]


def compress_snapshot(snapshot: dict[str, Any]) -> str:
    """Registry snapshot → compact ASCII string safe to embed in a frame."""
    raw = json.dumps(snapshot, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return base64.b64encode(zlib.compress(raw, level=6)).decode("ascii")


def decompress_snapshot(text: str) -> dict[str, Any] | None:
    """Inverse of :func:`compress_snapshot`; None on any malformed input.

    The broker calls this on bytes a remote worker sent — a corrupt or
    stale-format payload must degrade to "no metrics from that worker",
    never crash the fleet.
    """
    try:
        raw = zlib.decompress(base64.b64decode(text.encode("ascii"), validate=True))
        snapshot = json.loads(raw.decode("utf-8"))
    except (binascii.Error, zlib.error, UnicodeDecodeError, ValueError, AttributeError):
        return None
    if not isinstance(snapshot, dict):
        return None
    return snapshot


def _series_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _merge_histogram(aggregate: dict[str, Any], series: dict[str, Any]) -> None:
    count = int(series.get("count") or 0)
    aggregate["count"] = aggregate.get("count", 0) + count
    aggregate["sum"] = aggregate.get("sum", 0.0) + float(series.get("sum") or 0.0)
    for key, pick in (("min", min), ("max", max)):
        value = series.get(key)
        if value is None:
            continue
        current = aggregate.get(key)
        aggregate[key] = value if current is None else pick(current, value)


def merge_fleet_snapshots(
    per_worker: dict[str, dict[str, Any]],
    base: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold per-worker registry snapshots into one fleet snapshot.

    ``base`` (the broker's own registry snapshot — queue depth, lease
    latency quantiles, re-lease counters) passes through unlabelled.
    Worker families whose kind conflicts with an already-merged family of
    the same name are skipped rather than corrupting the export.
    """
    out: dict[str, Any] = {}
    if base:
        for name, family in base.items():
            out[name] = {
                "kind": family.get("kind"),
                "help": family.get("help", ""),
                "series": [dict(s) for s in family.get("series", ())],
            }
    aggregates: dict[str, dict[tuple[tuple[str, str], ...], dict[str, Any]]] = {}
    for worker in sorted(per_worker):
        snapshot = per_worker[worker]
        if not isinstance(snapshot, dict):
            continue
        for name, family in snapshot.items():
            if not isinstance(family, dict) or "series" not in family:
                continue
            kind = family.get("kind")
            merged = out.setdefault(
                name, {"kind": kind, "help": family.get("help", ""), "series": []}
            )
            if merged["kind"] != kind:
                continue
            for series in family["series"]:
                labels = dict(series.get("labels") or {})
                labelled = dict(series)
                labelled["labels"] = {**labels, "worker": worker}
                merged["series"].append(labelled)
                if kind not in ("counter", "histogram"):
                    continue
                slot = aggregates.setdefault(name, {}).setdefault(
                    _series_key(labels), {"labels": labels, "kind": kind}
                )
                if kind == "counter":
                    slot["value"] = slot.get("value", 0.0) + float(series.get("value") or 0.0)
                else:
                    _merge_histogram(slot, series)
    for name, by_labels in aggregates.items():
        series_list = out[name]["series"]
        for slot in by_labels.values():
            kind = slot.pop("kind")
            if kind == "histogram":
                slot.setdefault("count", 0)
                slot.setdefault("sum", 0.0)
                slot.setdefault("min", None)
                slot.setdefault("max", None)
            series_list.append(slot)
    for family in out.values():
        family["series"].sort(key=lambda s: _series_key(s.get("labels") or {}))
    return out
