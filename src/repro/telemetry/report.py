"""Phase-attribution reporting over a run's telemetry manifest.

``repro telemetry report <run-dir>`` renders, per instrumented kernel, how
the measured round time divides among the named phases (throw / accept /
delete), what fraction of the total each phase explains, and the residual
the instrumentation could not attribute. The acceptance bar for the
instrumentation itself is that named phases tile >= 95% of round time —
:func:`phase_attribution` computes exactly that ``coverage`` number so
tests and CI can assert it.

All numbers come from the final metric snapshot embedded in
``manifest.json`` (`round_seconds` and ``kernel_phase_seconds`` histogram
sums), so the report needs no events file and works on gzipped-away runs.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.manifest import load_manifest

__all__ = ["phase_attribution", "render_report", "report_run_dir"]


def _series_by_labels(metrics: dict[str, Any], name: str) -> list[dict[str, Any]]:
    family = metrics.get(name)
    if not family:
        return []
    return list(family.get("series", []))


def _group_key(labels: dict[str, str], drop: tuple[str, ...] = ()) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def phase_attribution(metrics: dict[str, Any]) -> list[dict[str, Any]]:
    """Attribute round time to phases, one row per instrumented unit.

    Groups ``round_seconds`` series by their full label set (e.g.
    ``kernel=fused``) and matches each against the ``kernel_phase_seconds``
    series sharing those labels. Returns rows::

        {"labels": {...}, "rounds": int, "total_s": float,
         "phases": [{"phase", "seconds", "count", "fraction",
                     "p50", "p95", "p99"}, ...],
         "attributed_s": float, "coverage": float}

    ``coverage`` is attributed/total in [0, 1] (1.0 when total is zero).
    Rows are sorted by descending total time.
    """
    rounds = _series_by_labels(metrics, "round_seconds")
    phases = _series_by_labels(metrics, "kernel_phase_seconds")
    by_unit: dict[tuple[tuple[str, str], ...], list[dict[str, Any]]] = {}
    for series in phases:
        key = _group_key(series["labels"], drop=("phase",))
        by_unit.setdefault(key, []).append(series)

    rows: list[dict[str, Any]] = []
    for series in rounds:
        key = _group_key(series["labels"])
        total = float(series["sum"])
        phase_rows = []
        attributed = 0.0
        for p in sorted(by_unit.get(key, []), key=lambda s: -float(s["sum"])):
            seconds = float(p["sum"])
            attributed += seconds
            phase_rows.append(
                {
                    "phase": p["labels"].get("phase", "?"),
                    "seconds": seconds,
                    "count": int(p["count"]),
                    "fraction": seconds / total if total > 0 else 0.0,
                    "p50": p.get("p50"),
                    "p95": p.get("p95"),
                    "p99": p.get("p99"),
                }
            )
        rows.append(
            {
                "labels": dict(series["labels"]),
                "rounds": int(series["count"]),
                "total_s": total,
                "phases": phase_rows,
                "attributed_s": attributed,
                "coverage": attributed / total if total > 0 else 1.0,
            }
        )
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _counter_value(metrics: dict[str, Any], name: str) -> float:
    return sum(float(s.get("value", 0.0)) for s in _series_by_labels(metrics, name))


def render_report(manifest: dict[str, Any]) -> list[str]:
    """Human-readable report lines for one run manifest."""
    metrics = manifest.get("metrics", {})
    rows = phase_attribution(metrics)
    lines: list[str] = []
    created = manifest.get("created_unix")
    code = manifest.get("code", {})
    lines.append("run: " + " ".join(manifest.get("command", []) or ["<unknown command>"]))
    lines.append(
        f"code: package={code.get('package_fingerprint', '?')} "
        f"measurement={code.get('measurement_fingerprint', '?')}"
        + (f"  created_unix={created}" if created is not None else "")
    )
    if not rows:
        lines.append("no round timing recorded (was telemetry enabled during the run?)")
    for row in rows:
        label_text = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items())) or "(all)"
        lines.append("")
        lines.append(
            f"[{label_text}] rounds={row['rounds']} total={_fmt_seconds(row['total_s'])} "
            f"attributed={row['coverage'] * 100:.1f}%"
        )
        lines.append(
            f"  {'phase':<10} {'time':>10} {'share':>7} {'p50':>10} {'p95':>10} {'p99':>10}"
        )
        for p in row["phases"]:
            lines.append(
                f"  {p['phase']:<10} {_fmt_seconds(p['seconds']):>10} "
                f"{p['fraction'] * 100:>6.1f}% {_fmt_seconds(p['p50']):>10} "
                f"{_fmt_seconds(p['p95']):>10} {_fmt_seconds(p.get('p99')):>10}"
            )
        residual = row["total_s"] - row["attributed_s"]
        lines.append(
            f"  {'(residual)':<10} {_fmt_seconds(max(0.0, residual)):>10} "
            f"{max(0.0, 1 - row['coverage']) * 100:>6.1f}%"
        )
    coarse = _series_by_labels(metrics, "phase_seconds")
    if coarse:
        lines.append("")
        lines.append("coarse spans:")
        for series in sorted(coarse, key=lambda s: -float(s["sum"])):
            label_text = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
            lines.append(
                f"  {label_text:<40} {_fmt_seconds(float(series['sum'])):>10} "
                f"(n={int(series['count'])})"
            )
    counters = []
    for name in (
        "runner_tasks_total",
        "task_retries_total",
        "tasks_quarantined_total",
        "fault_events_total",
        "kernel_dispatch_total",
    ):
        value = _counter_value(metrics, name)
        if value:
            counters.append(f"{name}={int(value)}")
    if counters:
        lines.append("")
        lines.append("counters: " + "  ".join(counters))
    return lines


def report_run_dir(run_dir: str) -> list[str]:
    """Load the manifest under ``run_dir`` and render the report."""
    return render_report(load_manifest(run_dir))
