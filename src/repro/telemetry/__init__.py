"""Unified telemetry: metrics registry, phase spans, exporters, manifests.

Quick start::

    from repro import telemetry
    from repro.telemetry import JsonlEventSink

    with telemetry.session(sinks=[JsonlEventSink("run/events.jsonl")]) as tel:
        driver.run(process)                       # instrumented internally
        snapshot = tel.registry.snapshot()
    telemetry.write_prometheus(snapshot, "run/metrics.prom")

Telemetry is **off by default** and strictly zero-overhead when off:
instrumented call sites guard on :func:`current` returning ``None`` and
never perturb simulation RNG streams, so instrumented runs are
bit-identical to uninstrumented ones (see ``docs/observability.md``).
"""

from repro.telemetry.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    build_manifest,
    host_info,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.fleet import (
    compress_snapshot,
    decompress_snapshot,
    merge_fleet_snapshots,
)
from repro.telemetry.profiling import merge_hotspots, profile_call, profile_section
from repro.telemetry.registry import (
    HISTOGRAM_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_key,
)
from repro.telemetry.report import phase_attribution, render_report, report_run_dir
from repro.telemetry.tracing import (
    TRACE_FILENAME,
    SpanBuffer,
    TaskTrace,
    Tracer,
    assemble_traces,
    build_span,
    read_spans,
    render_trace_report,
    trace_gaps,
    trace_id_for,
)
from repro.telemetry.runtime import (
    PhaseClock,
    Telemetry,
    current,
    disable,
    enable,
    session,
    span,
)
from repro.telemetry.sinks import (
    JsonlEventSink,
    parse_prometheus,
    read_events,
    render_prometheus,
    write_prometheus,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_QUANTILES",
    "quantile_key",
    "Telemetry",
    "PhaseClock",
    "current",
    "enable",
    "disable",
    "session",
    "span",
    "JsonlEventSink",
    "read_events",
    "render_prometheus",
    "write_prometheus",
    "parse_prometheus",
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "host_info",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "phase_attribution",
    "render_report",
    "report_run_dir",
    "TRACE_FILENAME",
    "Tracer",
    "SpanBuffer",
    "TaskTrace",
    "trace_id_for",
    "build_span",
    "read_spans",
    "assemble_traces",
    "trace_gaps",
    "render_trace_report",
    "compress_snapshot",
    "decompress_snapshot",
    "merge_fleet_snapshots",
    "profile_call",
    "merge_hotspots",
    "profile_section",
]
