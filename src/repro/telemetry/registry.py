"""Process-wide metrics registry: counters, gauges, and labelled histograms.

The registry is the passive half of the telemetry layer: instruments write
into it, exporters (:mod:`repro.telemetry.sinks`) and the run manifest
(:mod:`repro.telemetry.manifest`) read a :meth:`MetricsRegistry.snapshot`
out of it. It is deliberately dependency-free and never touches any
simulation RNG — recording a metric cannot perturb a trajectory.

Model (a deliberately small subset of the Prometheus data model):

* a **metric family** has a name, a kind (``counter`` / ``gauge`` /
  ``histogram``) and a help string;
* each family holds one **series** per distinct label set
  (``rounds_total{kernel="fused"}`` and ``rounds_total{kernel="legacy"}``
  are two series of one family);
* counters accumulate, gauges hold the last value, histograms track
  ``count/sum/min/max`` exactly plus a bounded reservoir for quantiles
  (deterministic: the reservoir's sampling RNG is a private
  ``random.Random`` with a fixed seed, so snapshots are reproducible for
  a given observation sequence and no ``numpy`` stream is ever consumed).

Instances are cheap; the *process-wide* registry lives inside the active
:class:`~repro.telemetry.runtime.Telemetry` session (see
:func:`repro.telemetry.runtime.enable`).
"""

from __future__ import annotations

import math
import random
import re
from typing import Any, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_QUANTILES",
    "quantile_key",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles reported by histogram snapshots and the Prometheus summary.
#: Exact up to the reservoir size (4096 observations), nearest-rank after.
HISTOGRAM_QUANTILES = (0.5, 0.95, 0.99)


def quantile_key(q: float) -> str:
    """Snapshot key for quantile ``q`` — ``p50``, ``p95``, ``p99``.

    ``round`` rather than ``int``: ``int(0.99 * 100)`` is 98 under binary
    floating point, which would silently mislabel the tail quantile.
    """
    return f"p{round(q * 100)}"

#: Reservoir size for histogram quantiles; below this, quantiles are exact.
_RESERVOIR_SIZE = 4096


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Family:
    """Shared machinery of one named metric family."""

    kind = "abstract"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    def _check_labels(self, labels: dict[str, Any]) -> None:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r} on metric {self.name!r}")

    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        """Iterate ``(labels, raw series value)`` pairs, sorted by labels."""
        for key in sorted(self._series):
            yield dict(key), self._series[key]

    def __len__(self) -> int:
        return len(self._series)


class Counter(_Family):
    """Monotonically accumulating value, one per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc by {amount})")
        self._check_labels(labels)
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one series (0.0 when never incremented)."""
        return float(self._series.get(_label_key(labels), 0.0))


class Gauge(_Family):
    """Last-write-wins value, one per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._check_labels(labels)
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        if key not in self._series:
            raise ConfigurationError(f"gauge {self.name!r} has no series for labels {dict(key)!r}")
        return float(self._series[key])


class _HistogramSeries:
    """One labelled histogram stream: exact count/sum/min/max + reservoir."""

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        # Private, fixed-seed RNG: deterministic snapshots, and no shared
        # (least of all simulation) random state is ever consumed.
        self._rng = random.Random(0x7E1E)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < _RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < _RESERVOIR_SIZE:
                self._reservoir[slot] = value

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the (possibly sampled) observations."""
        if not self._reservoir:
            return math.nan
        ordered = sorted(self._reservoir)
        rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]


class Histogram(_Family):
    """Distribution of observed values, one stream per label set."""

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        self._check_labels(labels)
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.observe(float(value))

    def stream(self, **labels: Any) -> _HistogramSeries | None:
        """The raw series for one label set (None when never observed)."""
        return self._series.get(_label_key(labels))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Holds every metric family of one telemetry session.

    Families are created on first use and looked up by name thereafter;
    re-registering a name with a different kind is an error (a silent
    kind change would corrupt every exporter).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _KINDS[kind](name, help_text)
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(name, "counter", help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(name, "gauge", help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._family(name, "histogram", help_text)  # type: ignore[return-value]

    def get(self, name: str) -> _Family | None:
        """Look up a family without creating it."""
        return self._families.get(name)

    def families(self) -> Iterator[_Family]:
        """Iterate families sorted by name."""
        for name in sorted(self._families):
            yield self._families[name]

    def __len__(self) -> int:
        return len(self._families)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every family, for manifests and reports.

        Histogram series expose ``count/sum/min/max`` plus the quantiles in
        :data:`HISTOGRAM_QUANTILES` (keys ``p50``, ``p95``, ``p99``);
        counter and gauge series expose ``value``. Everything is
        JSON-serialisable.
        """
        out: dict[str, Any] = {}
        for family in self.families():
            series_list = []
            for labels, raw in family.series():
                entry: dict[str, Any] = {"labels": labels}
                if family.kind == "histogram":
                    entry["count"] = raw.count
                    entry["sum"] = raw.total
                    entry["min"] = raw.min if raw.count else None
                    entry["max"] = raw.max if raw.count else None
                    for q in HISTOGRAM_QUANTILES:
                        value = raw.quantile(q)
                        entry[quantile_key(q)] = None if math.isnan(value) else value
                else:
                    entry["value"] = raw
                series_list.append(entry)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series_list,
            }
        return out
