"""Opt-in cProfile capture around task execution (``--cprofile``).

Profiling is strictly opt-in: ``cProfile`` slows the interpreter by
10-30%, so it must never run unless asked for. When enabled, each task's
profile is reduced to its top-N hotspots (by cumulative time) and the
per-task lists are merged into one ranked table that
:func:`repro.cli` folds into the run manifest under the optional
``"profile"`` key — so the question "where did this run's CPU go?" is
answerable from the manifest alone, months later.

The profiler observes the interpreter, not the simulation: it draws no
randomness and mutates no simulator state, so profiled runs keep the
bit-identical-CSV guarantee (the equivalence test covers it).
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path
from typing import Any, Callable

__all__ = ["profile_call", "merge_hotspots", "profile_section"]

#: Hotspots retained per task and in the merged manifest table.
DEFAULT_TOP = 20


def _function_key(func: tuple[str, int, str]) -> str:
    """Short, stable label for a profiled function: ``pkg/mod.py:42(name)``."""
    filename, lineno, name = func
    if filename.startswith("~") or filename == "<string>":
        return f"{filename}(name)" if name == "?" else f"<builtin>({name})"
    parts = Path(filename).parts
    short = "/".join(parts[-2:]) if len(parts) >= 2 else filename
    return f"{short}:{lineno}({name})"


def profile_call(
    fn: Callable[..., Any], *args: Any, top: int = DEFAULT_TOP, **kwargs: Any
) -> tuple[Any, list[dict[str, Any]]]:
    """Run ``fn(*args, **kwargs)`` under cProfile; return (result, hotspots).

    Hotspots are ``{"function", "ncalls", "tottime", "cumtime"}`` dicts,
    ranked by cumulative time, truncated to ``top`` entries. Exceptions
    from ``fn`` propagate unchanged (the profile for a failed call is
    discarded — a half-run profile would skew the merged table).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    hotspots: list[dict[str, Any]] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        hotspots.append(
            {
                "function": _function_key(func),
                "ncalls": int(nc),
                "tottime": round(float(tottime), 6),
                "cumtime": round(float(cumtime), 6),
            }
        )
    hotspots.sort(key=lambda h: (-h["cumtime"], h["function"]))
    return result, hotspots[: max(1, top)]


def merge_hotspots(
    per_task: list[list[dict[str, Any]]], top: int = DEFAULT_TOP
) -> list[dict[str, Any]]:
    """Merge per-task hotspot lists into one ranked table.

    Same function observed in several tasks accumulates; ranking is by
    total cumulative time. Tolerant of malformed entries (a remote worker
    on older code may ship a different shape) — they are skipped.
    """
    merged: dict[str, dict[str, Any]] = {}
    for hotspot_list in per_task:
        if not isinstance(hotspot_list, list):
            continue
        for entry in hotspot_list:
            if not isinstance(entry, dict) or "function" not in entry:
                continue
            slot = merged.setdefault(
                str(entry["function"]),
                {"function": str(entry["function"]), "ncalls": 0, "tottime": 0.0, "cumtime": 0.0},
            )
            slot["ncalls"] += int(entry.get("ncalls") or 0)
            slot["tottime"] = round(slot["tottime"] + float(entry.get("tottime") or 0.0), 6)
            slot["cumtime"] = round(slot["cumtime"] + float(entry.get("cumtime") or 0.0), 6)
    ranked = sorted(merged.values(), key=lambda h: (-h["cumtime"], h["function"]))
    return ranked[: max(1, top)]


def profile_section(
    hotspots: list[dict[str, Any]], tasks_profiled: int
) -> dict[str, Any]:
    """The optional ``"profile"`` block for the run manifest."""
    return {
        "profiler": "cProfile",
        "tasks_profiled": int(tasks_profiled),
        "top": list(hotspots),
    }
