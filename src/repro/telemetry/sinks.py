"""Telemetry exporters: JSONL event sink and Prometheus textfile format.

Two complementary outputs:

* :class:`JsonlEventSink` streams discrete events (task lifecycle, fault
  actions, coarse spans) as one JSON object per line — the same
  line-oriented convention as :mod:`repro.engine.trace`, so the existing
  JSONL tooling (``zcat``, ``jq``, pandas ``read_json(lines=True)``)
  applies unchanged. ``.jsonl.gz`` paths are gzip-compressed
  transparently.
* :func:`write_prometheus` renders a
  :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` in the
  Prometheus text exposition format (textfile-collector compatible).
  Histograms are exported as ``summary`` families — ``{quantile="..."}``
  series plus ``_sum``/``_count`` — because the registry tracks exact
  aggregates and reservoir quantiles rather than fixed buckets.

:func:`parse_prometheus` is the matching reader; CI and the schema tests
use it to assert that an exported textfile round-trips.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, IO, Iterator

from repro.telemetry.registry import HISTOGRAM_QUANTILES, quantile_key

__all__ = [
    "JsonlEventSink",
    "read_events",
    "render_prometheus",
    "write_prometheus",
    "parse_prometheus",
]


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open ``path`` in text mode, transparently gzipped for ``*.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


class JsonlEventSink:
    """Append telemetry events to a JSONL file (``.jsonl`` or ``.jsonl.gz``).

    Events are flushed per line for plain files so a crashed run leaves a
    readable prefix (same contract as the runner journal); gzip streams
    cannot flush per line cheaply, so compressed sinks flush on close.
    """

    def __init__(self, path: Path | str, flush_every: int = 1) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._compressed = path.suffix == ".gz"
        self._flush_every = max(1, int(flush_every))
        self._handle: IO[str] | None = _open_text(path, "w")
        self.events_written = 0

    def emit(self, event: dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1
        if not self._compressed and self.events_written % self._flush_every == 0:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Path | str) -> Iterator[dict[str, Any]]:
    """Lazily read events written by :class:`JsonlEventSink`."""
    with _open_text(Path(path), "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float | None) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["kind"]
        exposed = "summary" if kind == "histogram" else kind
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {exposed}")
        for series in family["series"]:
            labels = dict(series["labels"])
            if kind == "histogram":
                for q in HISTOGRAM_QUANTILES:
                    if quantile_key(q) not in series:
                        continue  # older snapshot without this quantile
                    quantiled = _render_labels({**labels, "quantile": str(q)})
                    value = series[quantile_key(q)]
                    lines.append(f"{name}{quantiled} {_format_value(value)}")
                plain = _render_labels(labels)
                lines.append(f"{name}_sum{plain} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{plain} {_format_value(series['count'])}")
            else:
                lines.append(f"{name}{_render_labels(labels)} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"


def write_prometheus(snapshot: dict[str, Any], path: Path | str) -> Path:
    """Write :func:`render_prometheus` output to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(snapshot), encoding="utf-8")
    return path


def _parse_label_block(block: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(block):
        eq = block.index("=", i)
        key = block[i:eq].strip().lstrip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {block!r}")
        j = eq + 2
        value: list[str] = []
        while block[j] != '"':
            ch = block[j]
            if ch == "\\":
                j += 1
                escaped = block[j]
                value.append({"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped))
            else:
                value.append(ch)
            j += 1
        labels[key] = "".join(value)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse text exposition back into ``{name: {kind, help, samples}}``.

    ``samples`` is a list of ``{"name", "labels", "value"}`` dicts (sample
    names keep their ``_sum``/``_count`` suffixes). This is a minimal
    reader for validating our own exporter, not a general scraper.
    """
    families: dict[str, Any] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"kind": None, "help": "", "samples": []})
            families[name]["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"kind": None, "help": "", "samples": []})
            families[name]["kind"] = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            brace = line.find("{")
            if brace >= 0:
                close = line.rindex("}")
                sample_name = line[:brace]
                labels = _parse_label_block(line[brace + 1 : close])
                value_text = line[close + 1 :].strip()
            else:
                sample_name, _, value_text = line.partition(" ")
                labels = {}
            value = float(value_text)
            # Attach to the declared family: exact name match, else strip a
            # summary suffix (_sum/_count), else start an undeclared family.
            family = families.get(sample_name)
            if family is None and sample_name.endswith(("_sum", "_count")):
                family = families.get(sample_name.rsplit("_", 1)[0])
            if family is None:
                family = families.setdefault(sample_name, {"kind": None, "help": "", "samples": []})
            family["samples"].append({"name": sample_name, "labels": labels, "value": value})
    return families
