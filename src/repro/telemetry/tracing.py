"""Fleet-wide task tracing: span records, trace files, timeline reports.

Every task an :class:`~repro.parallel.runner.ExperimentRunner` computes
gets a **trace id** (derived from the task's content digest, so it is
stable across retries and re-leases within a run). Each lifecycle hop is
recorded as a **span** — a closed interval with a name, parent link, and
attributes — and appended to a per-run ``trace.jsonl``. In broker mode
the same span records also land in the broker's durable ``events.jsonl``
(as ``event="span"`` lines), so a sweep's timeline survives client
crashes.

Span taxonomy (parent → child):

========== ======= ==========================================================
name       emitter meaning
========== ======= ==========================================================
task       client  root span: submit → journaled, carries label/digest/source
submitted  client  point span — the task entered the broker submit frame
queued     broker  waiting in the broker queue (or local pool backlog)
leased     broker  one lease attempt; ``status=released`` marks a dead worker
running    worker  ``execute_task`` wall-clock (simulation compute)
checkpoint worker  point span — resumed from a checkpoint (``resumed_round``)
upload     worker  result serialisation + ``complete`` frame transfer
journaled  client  point span — the bundle reached the runner's journal
========== ======= ==========================================================

Spans are minted where the work happens: workers and the broker collect
them in a :class:`SpanBuffer` and ship them over protocol frames; the
client's :class:`Tracer` is the only component that writes the trace
file. Span ids are prefixed with the minting process' origin (client
``c``, broker ``b``, workers their worker id) so ids never collide
across the fleet. Timestamps are wall-clock ``time.time()`` — exact on a
single host, subject to clock skew across hosts (see
``docs/observability.md``).

Tracing follows the telemetry ground rules: it never touches simulation
RNG (trace ids come from task digests, span ids from counters) and costs
nothing when disabled — instrumented sites guard on a ``None`` tracer.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Any, IO

from repro.errors import ConfigurationError

__all__ = [
    "TRACE_FILENAME",
    "Tracer",
    "SpanBuffer",
    "trace_id_for",
    "build_span",
    "read_spans",
    "assemble_traces",
    "TaskTrace",
    "trace_gaps",
    "render_trace_report",
]

TRACE_FILENAME = "trace.jsonl"

#: Hops every computed task must show (in order) for a chain to be complete.
_REQUIRED_HOPS = ("queued", "running", "journaled")


def trace_id_for(digest: str) -> str:
    """Trace id for a task digest — stable across retries and re-leases."""
    return f"t{digest[:12]}"


class _SpanMinter:
    """Shared id-minting + span-shaping machinery (thread-safe counter)."""

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self._counter = 0
        self._lock = threading.Lock()

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.origin}:{self._counter}"

    def mint_id(self) -> str:
        """Reserve a span id now, to parent children before the span closes.

        The runner mints the root ``task`` span id at submit time so
        worker/broker spans can point at it, then writes the root with
        :func:`build_span` once the task journals.
        """
        return self._next_id()

    def _make(
        self,
        trace: str,
        name: str,
        start: float,
        end: float | None,
        parent: str | None,
        attrs: dict[str, Any],
    ) -> dict[str, Any]:
        span: dict[str, Any] = {
            "event": "span",
            "trace": trace,
            "span": self._next_id(),
            "name": name,
            "start": round(float(start), 6),
            "end": round(float(end if end is not None else start), 6),
        }
        if parent is not None:
            span["parent"] = parent
        if attrs:
            span["attrs"] = attrs
        return span


class SpanBuffer(_SpanMinter):
    """Collects completed spans in memory.

    Workers and the broker mint spans here and ship them over protocol
    frames; the client writes them to the trace file. ``drain()`` hands
    the accumulated spans over and resets the buffer.
    """

    def __init__(self, origin: str) -> None:
        super().__init__(origin)
        self.spans: list[dict[str, Any]] = []

    def record(
        self,
        trace: str,
        name: str,
        start: float,
        end: float | None = None,
        parent: str | None = None,
        **attrs: Any,
    ) -> str:
        """Append one completed span; returns its minted span id."""
        span = self._make(trace, name, start, end, parent, attrs)
        self.spans.append(span)
        return span["span"]

    def drain(self) -> list[dict[str, Any]]:
        spans, self.spans = self.spans, []
        return spans


class Tracer(_SpanMinter):
    """Appends completed spans to a per-run ``trace.jsonl``.

    The file is opened lazily on the first span, so enabling tracing for
    a run that never computes a task leaves no empty artifact behind.
    Writes are line-buffered and guarded by a lock — the runner's result
    loop and the broker-event callback may both append.
    """

    def __init__(self, path: Path | str, origin: str = "c") -> None:
        super().__init__(origin)
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self.spans_written = 0

    def record(
        self,
        trace: str,
        name: str,
        start: float,
        end: float | None = None,
        parent: str | None = None,
        **attrs: Any,
    ) -> str:
        """Mint and write one completed span; returns its span id."""
        span = self._make(trace, name, start, end, parent, attrs)
        self.add(span)
        return span["span"]

    def add(self, span: dict[str, Any]) -> None:
        """Write an externally-minted span (worker / broker origin)."""
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(json.dumps(span, separators=(",", ":")) + "\n")
            self._handle.flush()
            self.spans_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None


def build_span(
    trace: str,
    span_id: str,
    name: str,
    start: float,
    end: float | None = None,
    parent: str | None = None,
    **attrs: Any,
) -> dict[str, Any]:
    """Assemble a span record around a pre-minted id (see ``mint_id``)."""
    span: dict[str, Any] = {
        "event": "span",
        "trace": trace,
        "span": span_id,
        "name": name,
        "start": round(float(start), 6),
        "end": round(float(end if end is not None else start), 6),
    }
    if parent is not None:
        span["parent"] = parent
    if attrs:
        span["attrs"] = attrs
    return span


def read_spans(path: Path | str) -> list[dict[str, Any]]:
    """Read span records from a JSONL file, tolerating a torn tail.

    Accepts both a run's ``trace.jsonl`` and a broker ``events.jsonl``
    (non-span event lines are skipped). A truncated final line — the
    writer died mid-append — is ignored, same contract as the broker
    store's ``read_events``.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no trace file at {path}")
    spans: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail from a killed writer
            raise ConfigurationError(f"corrupt span record at {path}:{index + 1}")
        if isinstance(record, dict) and record.get("event") == "span" and "trace" in record:
            spans.append(record)
    return spans


class TaskTrace:
    """All spans of one trace id, assembled for reporting."""

    def __init__(self, trace: str, spans: list[dict[str, Any]]) -> None:
        self.trace = trace
        self.spans = sorted(spans, key=lambda s: (s["start"], s["end"]))
        self.root = next((s for s in self.spans if s["name"] == "task"), None)

    @property
    def label(self) -> str:
        if self.root is not None:
            return str((self.root.get("attrs") or {}).get("label", self.trace))
        return self.trace

    @property
    def duration(self) -> float:
        if self.root is not None:
            return self.root["end"] - self.root["start"]
        if not self.spans:
            return 0.0
        return max(s["end"] for s in self.spans) - min(s["start"] for s in self.spans)

    def named(self, name: str) -> list[dict[str, Any]]:
        return [s for s in self.spans if s["name"] == name]

    def phase_seconds(self) -> dict[str, float]:
        """Wall-clock attribution per lifecycle phase.

        ``leased`` counts only the lease overhead not already attributed
        to its child ``running``/``upload`` spans; ``re-lease-waste`` is
        the full duration of released (dead-worker) leases — wall-clock
        the fleet spent on work that had to be redone.
        """
        phases: dict[str, float] = {}
        child_seconds = 0.0
        for name in ("running", "checkpoint", "upload"):
            total = sum(s["end"] - s["start"] for s in self.named(name))
            if self.named(name):
                phases[name] = total
            child_seconds += total
        queued = sum(s["end"] - s["start"] for s in self.named("queued"))
        if self.named("queued"):
            phases["queued"] = queued
        waste = 0.0
        lease_overhead = 0.0
        for lease in self.named("leased"):
            seconds = lease["end"] - lease["start"]
            if (lease.get("attrs") or {}).get("status") == "released":
                waste += seconds
            else:
                lease_overhead += seconds
        if waste:
            phases["re-lease-waste"] = waste
        overhead = lease_overhead - child_seconds
        if self.named("leased") and overhead > 1e-9:
            phases["lease-overhead"] = overhead
        return phases

    def dominant_phase(self) -> str:
        phases = self.phase_seconds()
        if not phases:
            return "?"
        return max(phases.items(), key=lambda kv: kv[1])[0]


def assemble_traces(spans: list[dict[str, Any]]) -> list[TaskTrace]:
    """Group spans by trace id; traces ordered by their earliest span.

    Identical records are collapsed first: a broker restart replays the
    live spans of recovered tasks to resubmitting clients (so their
    trace files stay complete), which can record the same span twice.
    """
    by_trace: dict[str, list[dict[str, Any]]] = {}
    seen: set[tuple[Any, ...]] = set()
    for span in spans:
        identity = (
            span["trace"],
            span.get("span"),
            span.get("name"),
            span.get("start"),
            span.get("end"),
        )
        if identity in seen:
            continue
        seen.add(identity)
        by_trace.setdefault(span["trace"], []).append(span)
    traces = [TaskTrace(trace, group) for trace, group in by_trace.items()]
    traces.sort(key=lambda t: min(s["start"] for s in t.spans))
    return traces


def trace_gaps(trace: TaskTrace) -> list[str]:
    """Lifecycle hops missing from a trace (empty list == complete chain).

    Cache- and journal-served tasks never compute, so ``running`` is only
    required when the root says the result was computed remotely/locally.
    """
    missing = [name for name in _REQUIRED_HOPS if not trace.named(name)]
    if trace.root is None:
        missing.insert(0, "task")
    else:
        source = (trace.root.get("attrs") or {}).get("source", "computed")
        if source not in ("computed", "remote") and "running" in missing:
            missing.remove("running")
    return missing


def _depth_of(span: dict[str, Any], by_id: dict[str, dict[str, Any]]) -> int:
    depth, parent = 0, span.get("parent")
    while parent is not None and parent in by_id and depth < 8:
        depth += 1
        parent = by_id[parent].get("parent")
    return depth


_TIMELINE_ATTRS = ("worker", "status", "seq", "resumed_round", "source")


def _span_line(span: dict[str, Any], origin: float, depth: int) -> str:
    seconds = span["end"] - span["start"]
    attrs = span.get("attrs") or {}
    notes = [f"{k}={attrs[k]}" for k in _TIMELINE_ATTRS if k in attrs]
    note = f"  ({', '.join(notes)})" if notes else ""
    return (
        f"  {'  ' * depth}+{span['start'] - origin:8.3f}s  "
        f"{span['name']:<10s} {seconds:8.3f}s{note}"
    )


def render_trace_report(traces: list[TaskTrace], limit: int = 10) -> str:
    """Per-task timelines plus a critical-path summary, as printable text.

    Timelines for the ``limit`` slowest tasks (offsets relative to each
    task's first span, children indented under their parents); then
    fleet-wide phase totals and the wall-clock cost of re-leases.
    """
    if not traces:
        return "no traces recorded\n"
    lines: list[str] = [f"traces: {len(traces)} task(s)"]
    slowest = sorted(traces, key=lambda t: t.duration, reverse=True)
    shown = slowest[: max(1, limit)]
    for trace in shown:
        gaps = trace_gaps(trace)
        status = "complete" if not gaps else f"missing: {', '.join(gaps)}"
        lines.append("")
        lines.append(f"{trace.label}  total {trace.duration:.3f}s  [{status}]")
        origin = min(s["start"] for s in trace.spans)
        by_id = {s["span"]: s for s in trace.spans}
        for span in trace.spans:
            lines.append(_span_line(span, origin, _depth_of(span, by_id)))
    if len(traces) > len(shown):
        lines.append(f"  ... {len(traces) - len(shown)} faster task(s) not shown")

    totals: dict[str, float] = {}
    for trace in traces:
        for phase, seconds in trace.phase_seconds().items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    grand = sum(totals.values()) or math.nan
    lines.append("")
    lines.append("critical path (phase totals across all tasks):")
    for phase in sorted(totals, key=lambda p: totals[p], reverse=True):
        share = 100.0 * totals[phase] / grand
        lines.append(f"  {phase:<16s} {totals[phase]:10.3f}s  {share:5.1f}%")
    releases = [t for t in traces if "re-lease-waste" in t.phase_seconds()]
    if releases:
        wasted = sum(t.phase_seconds()["re-lease-waste"] for t in releases)
        lines.append(
            f"re-leases: {len(releases)} task(s) recomputed after worker death, "
            f"{wasted:.3f}s wall-clock wasted"
        )
    dominant = [t.dominant_phase() for t in shown]
    if dominant:
        top = max(set(dominant), key=dominant.count)
        lines.append(f"slowest {len(shown)} task(s) dominated by: {top}")
    incomplete = [t for t in traces if trace_gaps(t)]
    if incomplete:
        lines.append(f"warning: {len(incomplete)} trace(s) with incomplete span chains")
    return "\n".join(lines) + "\n"


def now() -> float:
    """Wall-clock stamp for span boundaries (single definition fleet-wide)."""
    return time.time()
