"""The active telemetry session: enable/disable, spans, and phase clocks.

Design constraints (in priority order):

1. **Zero interference.** Telemetry never draws from any simulation RNG
   and never mutates simulator state — instrumented runs are bit-identical
   to uninstrumented ones by construction. Tests enforce this.
2. **Strict no-op when disabled.** The process-wide session is a single
   module global; :func:`current` is one global read. Hot paths (a
   simulator ``step``) guard with ``tel = current()`` / ``if tel is not
   None`` so the disabled cost is a handful of predicted-not-taken
   branches per round — measured < 1% on ``benchmarks/test_kernel_speed``.
   Cooler paths (driver phases, runner lifecycle) use :func:`span`, which
   returns a shared no-op context manager when disabled.
3. **One way in.** Everything funnels through the :class:`Telemetry`
   object: a :class:`~repro.telemetry.registry.MetricsRegistry` plus an
   optional list of event sinks (see :mod:`repro.telemetry.sinks`).

Typical wiring::

    from repro import telemetry

    with telemetry.session(sinks=[JsonlEventSink(path)]) as tel:
        run_simulation()
        snapshot = tel.registry.snapshot()

or imperatively with :func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "Telemetry",
    "PhaseClock",
    "current",
    "enable",
    "disable",
    "session",
    "span",
]


class Telemetry:
    """One telemetry session: a metrics registry plus event sinks.

    ``registry`` collects aggregates (exported at the end of the run);
    ``sinks`` receive discrete events (task completions, fault actions,
    coarse phase spans) as they happen. Events are timestamped with both
    wall-clock (``ts``) and seconds-since-enable (``elapsed_s``).
    ``tracer`` (a :class:`repro.telemetry.tracing.Tracer`, optional)
    receives distributed task-lifecycle spans; instrumented sites treat a
    ``None`` tracer exactly like a disabled session.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sinks: Any = (),
        tracer: Any = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sinks = list(sinks)
        self.tracer = tracer
        self.started_unix = time.time()
        self.started_monotonic = time.perf_counter()

    # -- registry conveniences (the instrumentation call surface) ----------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name``."""
        self.registry.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name``."""
        self.registry.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Observe ``value`` into histogram ``name``."""
        self.registry.histogram(name).observe(value, **labels)

    def phase(
        self, phase: str, seconds: float, metric: str = "kernel_phase_seconds", **labels: Any
    ) -> None:
        """Record ``seconds`` spent in ``phase`` into histogram ``metric``."""
        self.registry.histogram(metric).observe(seconds, phase=phase, **labels)

    # -- events ------------------------------------------------------------

    def emit(self, event: dict[str, Any]) -> None:
        """Send one event dict to every sink (no-op without sinks)."""
        if not self.sinks:
            return
        payload = {
            "ts": round(time.time(), 6),
            "elapsed_s": round(time.perf_counter() - self.started_monotonic, 6),
            **event,
        }
        for sink in self.sinks:
            sink.emit(payload)

    def close(self) -> None:
        """Close every sink (and the tracer) that has a ``close`` method."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        if self.tracer is not None:
            close = getattr(self.tracer, "close", None)
            if close is not None:
                close()


_ACTIVE: Telemetry | None = None


def current() -> Telemetry | None:
    """The process-wide active session, or None when telemetry is off.

    This is the hot-path guard: one module-global read. Instrumented inner
    loops call it once per iteration and skip all telemetry work on None.
    """
    return _ACTIVE


def enable(
    telemetry: Telemetry | None = None, *, sinks: Any = (), tracer: Any = None
) -> Telemetry:
    """Activate a telemetry session process-wide and return it.

    Enabling while a session is active is an error — nested sessions would
    silently split metrics across registries. Disable the old one first.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigurationError(
            "telemetry is already enabled; call disable() before enabling a new session"
        )
    if telemetry is not None and (sinks or tracer is not None):
        raise ConfigurationError("pass sinks/tracer to the Telemetry constructor, not both")
    _ACTIVE = telemetry if telemetry is not None else Telemetry(sinks=sinks, tracer=tracer)
    return _ACTIVE


def disable() -> Telemetry | None:
    """Deactivate the session (idempotent); returns the session, un-closed.

    The caller owns flushing/closing the sinks (usually via
    ``tel.close()``) — disabling must stay safe to call from ``finally``
    blocks without double-closing files.
    """
    global _ACTIVE
    tel, _ACTIVE = _ACTIVE, None
    return tel


@contextmanager
def session(sinks: Any = (), tracer: Any = None) -> Iterator[Telemetry]:
    """``with telemetry.session() as tel: ...`` — enable, then clean up."""
    tel = enable(sinks=sinks, tracer=tracer)
    try:
        yield tel
    finally:
        disable()
        tel.close()


class _NoopSpan:
    """Shared do-nothing context manager returned by :func:`span` when off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Times one phase; records a histogram sample and optionally an event."""

    __slots__ = ("_tel", "_name", "_metric", "_labels", "_emit", "_start")

    def __init__(
        self, tel: Telemetry, name: str, metric: str, labels: dict[str, Any], emit: bool
    ) -> None:
        self._tel = tel
        self._name = name
        self._metric = metric
        self._labels = labels
        self._emit = emit
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> bool:
        seconds = time.perf_counter() - self._start
        self._tel.phase(self._name, seconds, metric=self._metric, **self._labels)
        if self._emit:
            event = {
                "type": "span",
                "name": self._name,
                "metric": self._metric,
                "seconds": round(seconds, 6),
            }
            if self._labels:
                event["labels"] = {k: str(v) for k, v in self._labels.items()}
            if exc_type is not None:
                event["error"] = exc_type.__name__
            self._tel.emit(event)
        return False


def span(name: str, metric: str = "phase_seconds", emit: bool = False, **labels: Any):
    """Context manager timing one named phase.

    When telemetry is enabled, the elapsed time lands in histogram
    ``metric`` with labels ``{phase: name, **labels}`` (and, with
    ``emit=True``, a span event goes to the sinks). When disabled, a
    shared no-op context manager is returned — the call costs one global
    read and allocates nothing.
    """
    tel = _ACTIVE
    if tel is None:
        return _NOOP_SPAN
    return _Span(tel, name, metric, labels, emit)


class PhaseClock:
    """Sequential phase attribution for one simulator round.

    Built once per round *only when telemetry is enabled* (construction
    stamps the start time), then :meth:`lap` is called at each phase
    boundary: the elapsed time since the previous boundary is recorded
    under that phase name. :meth:`finish` closes the round, recording the
    total into ``round_seconds`` and bumping ``rounds_total`` — so the sum
    of the laps tiles the round and the report can attribute round time to
    phases without double counting.
    """

    __slots__ = ("_tel", "_labels", "_start", "_last")

    def __init__(self, tel: Telemetry, **labels: Any) -> None:
        self._tel = tel
        self._labels = labels
        self._start = self._last = time.perf_counter()

    def lap(self, phase: str) -> None:
        """Close the current phase, attributing time since the last lap."""
        now = time.perf_counter()
        self._tel.phase(phase, now - self._last, **self._labels)
        self._last = now

    def finish(self) -> None:
        """Close the round: total round time + round counter.

        The round ends at the *last lap boundary*, so the laps tile the
        total exactly — a fresh clock read here would count the previous
        lap's own recording cost as unattributed residual.
        """
        self._tel.observe("round_seconds", self._last - self._start, **self._labels)
        self._tel.inc("rounds_total", **self._labels)
