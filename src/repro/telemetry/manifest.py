"""Per-run manifest: config, seeds, code fingerprint, host, final metrics.

A manifest is the run's identity card, written next to its results so a
CSV or trace found months later can answer "what produced this?" without
archaeology. Schema is versioned (``repro-telemetry-manifest/v1``) and
:func:`validate_manifest` is the single source of truth for what a valid
manifest contains — tests and CI both call it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "host_info",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]

MANIFEST_SCHEMA = "repro-telemetry-manifest/v1"
MANIFEST_FILENAME = "manifest.json"

#: Top-level keys every v1 manifest must carry, with their expected types.
_REQUIRED_FIELDS: dict[str, type] = {
    "schema": str,
    "created_unix": float,
    "command": list,
    "config": dict,
    "seeds": list,
    "code": dict,
    "host": dict,
    "metrics": dict,
}


def host_info() -> dict[str, Any]:
    """Best-effort description of the machine the run executed on."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_manifest(
    config: dict[str, Any],
    seeds: list[int] | tuple[int, ...] = (),
    metrics: dict[str, Any] | None = None,
    command: list[str] | None = None,
) -> dict[str, Any]:
    """Assemble a v1 manifest dict (JSON-serialisable, schema-valid)."""
    # Imported lazily: keys pulls in the parallel package, and the hot
    # simulation modules import telemetry — keeping this out of module
    # scope keeps the telemetry package import-light and cycle-free.
    from repro.parallel.keys import measurement_fingerprint, package_fingerprint

    return {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(time.time(), 3),
        "command": list(command) if command is not None else list(sys.argv),
        "config": dict(config),
        "seeds": [int(s) for s in seeds],
        "code": {
            "package_fingerprint": package_fingerprint(),
            "measurement_fingerprint": measurement_fingerprint(),
        },
        "host": host_info(),
        "metrics": dict(metrics) if metrics is not None else {},
    }


def write_manifest(manifest: dict[str, Any], run_dir: Path | str) -> Path:
    """Validate then write ``manifest.json`` inside ``run_dir``."""
    validate_manifest(manifest)
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / MANIFEST_FILENAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_manifest(run_dir: Path | str) -> dict[str, Any]:
    """Read and validate the manifest of a run directory (or file path).

    Every failure mode — missing file, unreadable file, malformed JSON,
    schema violation — surfaces as :class:`ConfigurationError` so CLI
    callers can print one clear line and exit 2 instead of tracebacking.
    """
    path = Path(run_dir)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    if not path.exists():
        raise ConfigurationError(f"no {MANIFEST_FILENAME} found at {path}")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read manifest at {path}: {exc}") from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"manifest at {path} is not valid JSON: {exc}") from exc
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: Any) -> None:
    """Raise :class:`ConfigurationError` unless ``manifest`` is valid v1."""
    if not isinstance(manifest, dict):
        raise ConfigurationError("manifest must be a JSON object")
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ConfigurationError(
            f"unsupported manifest schema {schema!r} (expected {MANIFEST_SCHEMA!r})"
        )
    for field, expected in _REQUIRED_FIELDS.items():
        if field not in manifest:
            raise ConfigurationError(f"manifest missing required field {field!r}")
        value = manifest[field]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigurationError(f"manifest field {field!r} must be a number")
        elif not isinstance(value, expected):
            raise ConfigurationError(
                f"manifest field {field!r} must be {expected.__name__}, got "
                f"{type(value).__name__}"
            )
    code = manifest["code"]
    for key in ("package_fingerprint", "measurement_fingerprint"):
        if not isinstance(code.get(key), str) or not code[key]:
            raise ConfigurationError(f"manifest code.{key} must be a non-empty string")
    if not all(isinstance(s, int) and not isinstance(s, bool) for s in manifest["seeds"]):
        raise ConfigurationError("manifest seeds must be a list of integers")
    for name, family in manifest["metrics"].items():
        if not isinstance(family, dict) or "kind" not in family or "series" not in family:
            raise ConfigurationError(
                f"manifest metric {name!r} must be a snapshot family with kind + series"
            )
    profile = manifest.get("profile")
    if profile is not None:  # optional: only --cprofile runs carry it
        if not isinstance(profile, dict) or not isinstance(profile.get("top"), list):
            raise ConfigurationError("manifest profile must be an object with a 'top' list")
        for entry in profile["top"]:
            if not isinstance(entry, dict) or "function" not in entry:
                raise ConfigurationError("manifest profile.top entries must name a function")
