"""Deterministic randomness management.

Every stochastic component in this library draws its randomness from a
``numpy.random.Generator`` that is threaded explicitly through the code; there
is no module-level global RNG state. This module centralises how generators
are created so that

* a single integer seed reproduces an entire experiment,
* independent components (e.g. the two processes of a coupled run, or the
  replicates of a parameter sweep) receive *statistically independent*
  streams derived from that one seed, and
* the mapping from ``(seed, name)`` to a stream is stable across runs and
  platforms.

The implementation is a thin wrapper around :class:`numpy.random.SeedSequence`
spawning, which is the numpy-sanctioned way to derive independent child
streams.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngFactory", "resolve_rng", "spawn_children"]


def _stable_key_hash(key: str) -> int:
    """Hash ``key`` to a 32-bit integer, stably across interpreter runs.

    Python's built-in ``hash`` is salted per process for strings, so we use
    CRC32 which is deterministic and fast. Collisions are acceptable: the
    hash is mixed into a ``SeedSequence`` together with the root entropy, so
    two colliding names merely share a stream, they do not bias it.
    """
    return zlib.crc32(key.encode("utf-8"))


@dataclass
class RngFactory:
    """Factory producing named, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment. Two factories with the same seed
        produce identical streams for identical names.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> a = factory.generator("arrivals")
    >>> b = factory.generator("choices")
    >>> a is not b
    True
    >>> a2 = RngFactory(seed=7).generator("arrivals")
    >>> int(a.integers(1 << 30)) == int(a2.integers(1 << 30))
    True
    """

    seed: int
    _counter: int = field(default=0, init=False, repr=False)

    def generator(self, name: str = "") -> np.random.Generator:
        """Return a fresh generator for the stream called ``name``.

        Calling this twice with the same name returns two generators in the
        *same state* (useful for replaying a component), not a continuation.
        """
        entropy = (self.seed, _stable_key_hash(name))
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def sequential(self) -> np.random.Generator:
        """Return a generator from an internal, call-order-dependent stream.

        Use for throwaway randomness where only global reproducibility of
        the factory's call sequence matters.
        """
        self._counter += 1
        return np.random.default_rng(np.random.SeedSequence((self.seed, 0xC0FFEE, self._counter)))

    def child(self, index: int) -> "RngFactory":
        """Derive a child factory, e.g. one per replicate of a sweep."""
        mixed = np.random.SeedSequence((self.seed, 0x5EED, index)).generate_state(1)[0]
        return RngFactory(seed=int(mixed))


def resolve_rng(
    rng: np.random.Generator | RngFactory | int | None,
    name: str = "",
) -> np.random.Generator:
    """Normalise the many accepted RNG inputs to a ``numpy`` Generator.

    Accepts a ready generator (returned as-is), an :class:`RngFactory`
    (a named stream is derived), an integer seed, or ``None`` for fresh
    OS entropy.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, RngFactory):
        return rng.generator(name)
    if isinstance(rng, (int, np.integer)):
        return RngFactory(seed=int(rng)).generator(name)
    raise TypeError(f"cannot build a random generator from {type(rng).__name__}")


def spawn_children(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent generators.

    The parent generator is consumed (advanced) in the process, so the
    children do not overlap with future draws from the parent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
