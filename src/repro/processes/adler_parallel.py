"""Infinite parallel d-copy FIFO allocation (Adler, Berenbrink, Schröder).

"Analyzing an Infinite Parallel Job Allocation Process" (ESA'98): in each
round ``m < n/(3de)`` balls arrive; each ball enqueues a *copy* of itself
into ``d`` random bins' FIFO queues. At the end of each round, every
non-empty bin serves the first ball in its queue and initiates the deletion
of that ball's copies from the other bins.

Adler et al. show constant expected waiting time and maximum waiting time
``ln ln n / ln d + O(1)`` w.h.p. The severe arrival-rate restriction
``m < n/(3de)`` is the drawback the paper's introduction cites — CAPPED
achieves stability for any λ < 1. The comparison experiment quantifies
exactly this trade-off.

Copies are deleted lazily: a bin popping an already-served ball discards it
without consuming its one service per round, which is observationally
equivalent to the instantaneous deletion broadcast of the original model.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng

__all__ = ["AdlerParallelProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


class AdlerParallelProcess:
    """Round-based d-copy FIFO allocation with deletion broadcast.

    Parameters
    ----------
    n:
        Number of bins.
    d:
        Copies per ball (d ≥ 2 for the log-log guarantee; d = 1 allowed).
    arrivals_per_round:
        Balls injected per round; the analysis requires
        ``arrivals_per_round < n/(3de)``. Pass ``enforce_rate_bound=False``
        to experiment beyond the proven regime.
    """

    def __init__(
        self,
        n: int,
        d: int,
        arrivals_per_round: int,
        rng=None,
        enforce_rate_bound: bool = True,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if d < 1:
            raise ConfigurationError(f"need at least one copy, got d={d}")
        if arrivals_per_round < 0:
            raise ConfigurationError(f"arrivals must be non-negative, got {arrivals_per_round}")
        bound = n / (3 * d * math.e)
        if enforce_rate_bound and arrivals_per_round >= bound:
            raise ConfigurationError(
                f"Adler et al. require m < n/(3de) = {bound:.2f} arrivals per round, "
                f"got {arrivals_per_round} (pass enforce_rate_bound=False to override)"
            )
        self.n = n
        self.d = d
        self.arrivals_per_round = arrivals_per_round
        self.rng = resolve_rng(rng, "adler")
        self.queues: list[deque[int]] = [deque() for _ in range(n)]
        self.birth_round: dict[int, int] = {}
        self.served: set[int] = set()
        self.round = 0
        self._next_ball = 0
        self.live_balls = 0

    @property
    def pool_size(self) -> int:
        """Balls injected but not yet served."""
        return self.live_balls

    def step(self) -> RoundRecord:
        """One round: inject, replicate into d queues, serve one per bin."""
        self.round += 1
        t = self.round

        generated = self.arrivals_per_round
        for _ in range(generated):
            ball = self._next_ball
            self._next_ball += 1
            self.birth_round[ball] = t
            self.live_balls += 1
            bins = self.rng.choice(self.n, size=self.d, replace=False) if self.d <= self.n else (
                self.rng.integers(0, self.n, size=self.d)
            )
            for bin_index in bins:
                self.queues[int(bin_index)].append(ball)

        waits: list[int] = []
        deleted = 0
        for queue in self.queues:
            # Discard stale copies of already-served balls, then serve at
            # most one live ball.
            while queue and queue[0] in self.served:
                queue.popleft()
            if queue:
                ball = queue.popleft()
                self.served.add(ball)
                self.live_balls -= 1
                deleted += 1
                waits.append(t - self.birth_round.pop(ball))

        if waits:
            wait_values, wait_counts = np.unique(
                np.asarray(waits, dtype=np.int64), return_counts=True
            )
        else:
            wait_values, wait_counts = _EMPTY, _EMPTY

        live_loads = [sum(1 for b in q if b not in self.served) for q in self.queues]
        return RoundRecord(
            round=t,
            arrivals=generated,
            thrown=generated * self.d,
            accepted=generated,
            deleted=deleted,
            pool_size=self.live_balls,
            total_load=sum(live_loads),
            max_load=max(live_loads) if live_loads else 0,
            wait_values=wait_values,
            wait_counts=wait_counts,
        )

    def check_invariants(self) -> None:
        """Live-ball accounting must be consistent with birth records."""
        if self.live_balls != len(self.birth_round):
            raise InvariantViolation(
                f"live ball count {self.live_balls} != birth records {len(self.birth_round)}"
            )
        if self.live_balls < 0:
            raise InvariantViolation("negative live ball count")
