"""Classical sequential static allocations.

* :func:`sequential_one_choice` — every ball picks one uniform bin.
  For m = n the maximum load is ``(1 − o(1))·ln n / ln ln n`` w.h.p.
  (Raab & Steger), and ``m/n + Θ(√(m·ln n / n))`` for m ≫ n ln n.
* :func:`sequential_greedy_d` — GREEDY[d] of Azar et al.: balls arrive one
  by one, each picks d uniform bins and commits to the least loaded.
  Maximum load ``ln ln n / ln d + Θ(1)`` w.h.p. — the power of two choices.

These are the sequential reference points the paper's introduction
contrasts against parallel processes; they also serve as oracles in tests
of the library's sampling utilities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import resolve_rng

__all__ = ["sequential_one_choice", "sequential_greedy_d", "max_load"]


def _check(m: int, n: int) -> None:
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if n < 1:
        raise ConfigurationError(f"need at least one bin, got n={n}")


def sequential_one_choice(m: int, n: int, rng=None) -> np.ndarray:
    """Throw ``m`` balls u.a.r. into ``n`` bins; return final loads."""
    _check(m, n)
    generator = resolve_rng(rng, "one-choice")
    return np.bincount(generator.integers(0, n, size=m), minlength=n).astype(np.int64)


def sequential_greedy_d(m: int, n: int, d: int, rng=None, chunk: int = 4096) -> np.ndarray:
    """Sequential GREEDY[d]: each ball joins the least loaded of d choices.

    Ties are broken towards the first-sampled choice (arbitrary rule, as
    in Azar et al.). Choices are pre-sampled in chunks to keep the
    unavoidable sequential loop cheap.
    """
    _check(m, n)
    if d < 1:
        raise ConfigurationError(f"need at least one choice, got d={d}")
    generator = resolve_rng(rng, "greedy-d")
    loads = np.zeros(n, dtype=np.int64)
    if d == 1:
        return sequential_one_choice(m, n, rng=generator)
    remaining = m
    while remaining > 0:
        batch = min(chunk, remaining)
        choices = generator.integers(0, n, size=(batch, d))
        for row in choices:
            # `row` is tiny (d entries); argmin gives the first minimum.
            target = row[int(np.argmin(loads[row]))]
            loads[target] += 1
        remaining -= batch
    return loads


def max_load(loads: np.ndarray) -> int:
    """Maximum entry of a load vector (0 for an empty vector)."""
    return int(loads.max()) if len(loads) else 0
