"""THRESHOLD[T] — static parallel allocation (Adler et al., 1998).

``m`` balls are to be allocated to ``n`` bins. In each communication round
every unallocated ball picks a bin independently and uniformly at random,
and every bin accepts at most ``T`` of its requests this round (rejecting
the rest). Unallocated balls retry in the next round.

Adler et al. prove that THRESHOLD[1] with m = n terminates after at most
``ln ln n + O(1)`` rounds w.h.p., which also bounds the maximum load (a bin
gains at most T = 1 ball per round). This is the intellectual ancestor of
CAPPED's bounded-acceptance rule and is included as a static baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rng import resolve_rng

__all__ = ["ThresholdResult", "threshold_allocate"]


@dataclass(frozen=True, slots=True)
class ThresholdResult:
    """Outcome of a THRESHOLD[T] run.

    Attributes
    ----------
    rounds:
        Communication rounds until every ball was allocated.
    max_load:
        Maximum final bin load.
    loads:
        Final per-bin loads.
    unallocated_trace:
        Number of still-unallocated balls after each round (strictly
        decreasing to zero; its length equals ``rounds``).
    """

    rounds: int
    max_load: int
    loads: np.ndarray
    unallocated_trace: tuple[int, ...]


def threshold_allocate(
    m: int,
    n: int,
    threshold: int = 1,
    rng=None,
    max_rounds: int = 10_000,
) -> ThresholdResult:
    """Run THRESHOLD[T] until all ``m`` balls are allocated.

    Parameters
    ----------
    m:
        Number of balls.
    n:
        Number of bins.
    threshold:
        Per-round acceptance cap T per bin.
    max_rounds:
        Safety limit; exceeding it raises :class:`SimulationError` (for
        sensible parameters termination takes ~ln ln n rounds).
    """
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if n < 1:
        raise ConfigurationError(f"need at least one bin, got n={n}")
    if threshold < 1:
        raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
    generator = resolve_rng(rng, "threshold")

    loads = np.zeros(n, dtype=np.int64)
    unallocated = m
    trace: list[int] = []
    rounds = 0
    while unallocated > 0:
        if rounds >= max_rounds:
            raise SimulationError(
                f"THRESHOLD[{threshold}] did not terminate within {max_rounds} rounds "
                f"({unallocated} balls left)"
            )
        rounds += 1
        requests = np.bincount(generator.integers(0, n, size=unallocated), minlength=n)
        accepted = np.minimum(requests, threshold)
        loads += accepted
        unallocated -= int(accepted.sum())
        trace.append(unallocated)

    return ThresholdResult(
        rounds=rounds,
        max_load=int(loads.max()) if n else 0,
        loads=loads,
        unallocated_trace=tuple(trace),
    )
