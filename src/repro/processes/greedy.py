"""Batch-parallel GREEDY[d] with leaky bins (Berenbrink et al., PODC'16).

The paper's main comparison target ("Self-Stabilizing Balls and Bins in
Batches — The Power of Leaky Bins"). Per round:

1. ``λn`` new balls arrive.
2. Each ball samples ``d`` bins independently and uniformly at random and
   commits to one with the **least load at the beginning of the round** —
   balls of the current batch are *not* counted (this is the defining
   batch-parallel semantics; see the paper's introduction for why counting
   them would be unrealistic).
3. Bins have unbounded FIFO queues; at the end of the round every
   non-empty bin deletes (serves) its first ball.

Known bounds (PODC'16): waiting time / maximum load at any time is w.h.p.
``O(1/(1−λ)·log(n/(1−λ)))`` for d = 1 and ``O(log(n/(1−λ)))`` for d = 2.
CAPPED(c, λ) improves this to ``~ln(1/(1−λ))/c + log log n + O(c)`` — the
comparison experiment CLAIM-BASE regenerates exactly this contrast.

Waiting times use the position identity (see
:mod:`repro.balls.bin_array`): with one deletion per non-empty bin per
round, a ball entering queue position ``p`` in round ``t`` is served at the
end of round ``t + p``, so its waiting time ``p`` is known at arrival.

GREEDY[1] is distributionally identical to CAPPED(∞, λ); the test suite
cross-validates the two implementations.
"""

from __future__ import annotations

import numpy as np

from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng
from repro.workloads.arrivals import ArrivalProcess, DeterministicArrivals

__all__ = ["GreedyBatchProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


def _ranks_within_groups(groups: np.ndarray) -> np.ndarray:
    """Arrival rank of each element among equal values of ``groups``.

    ``groups[k]`` is the bin ball ``k`` committed to; the result gives each
    ball its 0-based position among this round's arrivals to the same bin,
    in ball order (the arbitrary-but-fixed batch tie-break).
    """
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    boundaries = np.empty(len(groups), dtype=bool)
    if len(groups):
        boundaries[0] = True
        boundaries[1:] = sorted_groups[1:] != sorted_groups[:-1]
    group_starts = np.where(boundaries, np.arange(len(groups)), 0)
    np.maximum.accumulate(group_starts, out=group_starts)
    ranks_sorted = np.arange(len(groups)) - group_starts
    ranks = np.empty(len(groups), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


class GreedyBatchProcess:
    """Round-based GREEDY[d] with unbounded leaky bins.

    Parameters
    ----------
    n:
        Number of bins.
    d:
        Choices per ball (d ≥ 1).
    lam:
        Injection rate λ ∈ [0, 1) with integral ``λn`` (unless a custom
        arrival process is supplied).
    rng:
        Seed, generator, or factory.
    arrivals:
        Optional custom arrival process.

    Examples
    --------
    >>> process = GreedyBatchProcess(n=64, d=2, lam=0.75, rng=3)
    >>> record = process.step()
    >>> record.accepted
    48
    """

    def __init__(
        self,
        n: int,
        d: int,
        lam: float,
        rng=None,
        arrivals: ArrivalProcess | None = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if d < 1:
            raise ConfigurationError(f"need at least one choice, got d={d}")
        self.n = n
        self.d = d
        self.lam = lam
        self.rng = resolve_rng(rng, "greedy")
        self.arrivals = arrivals if arrivals is not None else DeterministicArrivals(n=n, lam=lam)
        self.loads = np.zeros(n, dtype=np.int64)
        self.round = 0
        self.peak_load = 0

    @property
    def pool_size(self) -> int:
        """Always 0 — GREEDY never rejects balls (unbounded bins)."""
        return 0

    def commit_bins(self, arrivals: int) -> np.ndarray:
        """Sample d choices per ball and commit to the least loaded.

        Load comparisons use the loads at the *beginning of the round*
        only. Ties among a ball's d choices go to the first-sampled
        minimum (an arbitrary-but-fixed rule, as in the source papers).
        """
        if arrivals == 0:
            return _EMPTY
        choices = self.rng.integers(0, self.n, size=(arrivals, self.d))
        if self.d == 1:
            return choices[:, 0]
        chosen_loads = self.loads[choices]
        best = np.argmin(chosen_loads, axis=1)  # first minimum wins ties
        return choices[np.arange(arrivals), best]

    def step(self) -> RoundRecord:
        """Advance one round of batch GREEDY[d]."""
        self.round += 1
        t = self.round

        generated = self.arrivals.arrivals(t, self.rng)
        committed = self.commit_bins(generated)

        if generated:
            ranks = _ranks_within_groups(committed)
            waits = self.loads[committed] + ranks
            wait_values, wait_counts = np.unique(waits, return_counts=True)
            self.loads += np.bincount(committed, minlength=self.n)
        else:
            wait_values, wait_counts = _EMPTY, _EMPTY

        peak = int(self.loads.max())
        if peak > self.peak_load:
            self.peak_load = peak

        nonempty = self.loads > 0
        deleted = int(np.count_nonzero(nonempty))
        self.loads[nonempty] -= 1

        return RoundRecord(
            round=t,
            arrivals=generated,
            thrown=generated,
            accepted=generated,
            deleted=deleted,
            pool_size=0,
            total_load=int(self.loads.sum()),
            max_load=int(self.loads.max()),
            wait_values=wait_values,
            wait_counts=wait_counts,
        )

    def check_invariants(self) -> None:
        """Loads must be non-negative."""
        if np.any(self.loads < 0):
            raise InvariantViolation("negative bin load in GREEDY process")

    def get_state(self) -> dict:
        """Checkpoint the process (loads, counters, RNG) for exact resume."""
        return {
            "round": self.round,
            "loads": self.loads.tolist(),
            "peak_load": self.peak_load,
            "rng": self.rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        loads = np.asarray(state["loads"], dtype=np.int64)
        if loads.shape != (self.n,):
            raise ValueError(f"state has {loads.shape} loads, expected ({self.n},)")
        self.round = int(state["round"])
        self.loads = loads.copy()
        self.peak_load = int(state["peak_load"])
        self.rng.bit_generator.state = state["rng"]
        self.check_invariants()
