"""ALWAYS-GO-LEFT[d] — Vöcking's asymmetric d-choice allocation.

The bins are split into ``d`` contiguous groups of size ``n/d``. Each ball
samples one uniform bin *per group* and commits to a least-loaded sampled
bin; ties are broken towards the leftmost (lowest-index) group — the
asymmetry that improves the maximum load to ``ln ln n / (d·ln φ_d) + O(1)``
(φ_d the generalised golden ratio), beating symmetric GREEDY[d].

Included because the paper's related-work comparison (Vöcking, JACM'03)
cites its infinite-process guarantee ``ln ln n/(d·ln φ_d) + O(h)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import resolve_rng

__all__ = ["always_go_left"]


def always_go_left(m: int, n: int, d: int, rng=None) -> np.ndarray:
    """Sequentially allocate ``m`` balls with the asymmetric d-choice rule.

    Parameters
    ----------
    m:
        Number of balls.
    n:
        Number of bins; must be divisible by ``d``.
    d:
        Number of groups (and choices per ball), d ≥ 2.

    Returns
    -------
    numpy.ndarray
        Final per-bin loads (groups laid out contiguously left to right).
    """
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if d < 2:
        raise ConfigurationError(f"ALWAYS-GO-LEFT needs d >= 2, got {d}")
    if n < d or n % d != 0:
        raise ConfigurationError(f"n={n} must be a positive multiple of d={d}")
    generator = resolve_rng(rng, "always-go-left")

    group_size = n // d
    loads = np.zeros(n, dtype=np.int64)
    group_offsets = np.arange(d) * group_size
    choices = generator.integers(0, group_size, size=(m, d)) + group_offsets
    for row in choices:
        candidate_loads = loads[row]
        # argmin returns the first (leftmost-group) minimum: go left on ties.
        target = row[int(np.argmin(candidate_loads))]
        loads[target] += 1
    return loads
