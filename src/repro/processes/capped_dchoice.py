"""CAPPED(c, λ) with d probes per ball — a capacity-vs-choices ablation.

The paper deliberately uses **one** random choice per ball and buys its
improvement with buffer capacity, noting that "an advantage of the
GREEDY[d] process from [PODC'16] is that it only needs d random choices to
allocate a ball" while their process retries. The natural follow-up —
what does a *combination* buy? — is exactly the kind of ablation the
paper's design discussion invites.

``CappedDChoiceProcess`` extends CAPPED(c, λ): every pool ball samples
``d`` bins and sends its allocation request to a sampled bin with the most
free buffer space at the *beginning of the round* (batch semantics, as in
GREEDY[d]; ties towards the first-sampled probe). Acceptance and FIFO
deletion are unchanged: the oldest requests win, capacity caps admissions,
rejected balls return to the pool.

For d = 1 this is exactly CAPPED(c, λ) up to how randomness is consumed
(the test suite checks distributional agreement). The ablation bench shows
where a second choice helps (small c) and where capacity has already
absorbed the contention (c near the sweet spot).
"""

from __future__ import annotations

import numpy as np

from repro.balls.bin_array import BinArray
from repro.balls.pool import AgePool
from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.kernels.round import positional_waits as _positional_waits
from repro.kernels.round import resolve_capped_round, wait_histogram as _wait_histogram
from repro.rng import resolve_rng
from repro.workloads.arrivals import ArrivalProcess, DeterministicArrivals

__all__ = ["CappedDChoiceProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


class CappedDChoiceProcess:
    """CAPPED(c, λ) where each ball probes ``d`` bins per round.

    Parameters
    ----------
    n, capacity, lam:
        As in :class:`~repro.core.capped.CappedProcess` (capacity must be
        finite — with unbounded bins this degenerates to GREEDY[d]).
    d:
        Probes per ball per round; d = 1 recovers the paper's process.
    kernel:
        ``"fused"`` (default) commits every ball's probes in one draw and
        resolves acceptance in one counting pass; ``"legacy"`` is the
        per-bucket sweep. Bit-identical for the same seed, including RNG
        consumption (row-major ``(count, d)`` draws concatenate to one
        ``(thrown, d)`` draw — see ``docs/kernels.md``).
    """

    def __init__(
        self,
        n: int,
        capacity: int,
        lam: float,
        d: int = 2,
        rng=None,
        arrivals: ArrivalProcess | None = None,
        initial_pool: int = 0,
        kernel: str = "fused",
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if capacity is None or capacity < 1:
            raise ConfigurationError(f"capacity must be a positive int, got {capacity}")
        if d < 1:
            raise ConfigurationError(f"need at least one probe, got d={d}")
        if initial_pool < 0:
            raise ConfigurationError(f"initial_pool must be non-negative, got {initial_pool}")
        if kernel not in ("fused", "legacy"):
            raise ConfigurationError(f"kernel must be 'fused' or 'legacy', got {kernel!r}")
        self.n = n
        self.capacity = capacity
        self.lam = lam
        self.d = d
        self.kernel = kernel
        self.rng = resolve_rng(rng, "capped-dchoice")
        self.arrivals = arrivals if arrivals is not None else DeterministicArrivals(n=n, lam=lam)
        self.pool = AgePool()
        if initial_pool:
            self.pool.add(0, initial_pool)
        self.bins = BinArray(n, capacity)
        self.round = 0

    @property
    def pool_size(self) -> int:
        """Current pool size ``m(t)``."""
        return self.pool.size

    def _commit(self, count: int, start_loads: np.ndarray) -> np.ndarray:
        """Sample d probes per ball; commit to the emptiest probed bin.

        Start-of-round loads only (batch semantics); ties go to the first
        sampled probe, matching the GREEDY[d] baseline's rule.
        """
        probes = self.rng.integers(0, self.n, size=(count, self.d))
        if self.d == 1:
            return probes[:, 0]
        best = np.argmin(start_loads[probes], axis=1)
        return probes[np.arange(count), best]

    def _resolve_fused(self, t: int, thrown: int) -> tuple[int, np.ndarray, np.ndarray]:
        """One draw, one commit, one counting acceptance pass for all buckets.

        Returns ``(accepted_total, wait_values, wait_counts)`` — see
        :meth:`repro.core.capped.CappedProcess._resolve_fused`.
        """
        labels, counts = self.pool.as_arrays()
        committed = self._commit(thrown, self.bins.loads)
        resolved = resolve_capped_round(
            self.bins.free_slots(),
            self.bins.loads,
            committed,
            counts,
            t - labels,
            sort_runs=False,
            need_runs=False,
        )
        if resolved.accepted_total:
            self.bins.commit_accepted(resolved.accepted_per_key, resolved.accepted_total)
            self.pool.remove_bulk(resolved.accepted_per_bucket)
        if resolved.wait_hist is not None:
            return resolved.accepted_total, *resolved.wait_hist
        return resolved.accepted_total, *_wait_histogram(resolved.waits)

    def _resolve_legacy(self, t: int) -> tuple[int, np.ndarray]:
        """The original per-bucket sweep — the executable reference.

        Commits are drawn up front (loads are untouched until the first
        accept, so no defensive copy is needed) and pool removals are
        committed in one bulk call, so the sweep never iterates a mutating
        structure.
        """
        labels, counts = self.pool.as_arrays()
        committed_chunks = [self._commit(int(count), self.bins.loads) for count in counts]

        wait_chunks: list[np.ndarray] = []
        removed = np.zeros(len(labels), dtype=np.int64)
        for i, (label, committed) in enumerate(zip(labels, committed_chunks)):
            requests = np.bincount(committed, minlength=self.n)
            accepted = np.minimum(requests, self.bins.free_slots())
            bucket_accepted = int(accepted.sum())
            if bucket_accepted:
                nonzero = np.nonzero(accepted)[0]
                starts = (t - label) + self.bins.loads[nonzero]
                wait_chunks.append(_positional_waits(starts, accepted[nonzero]))
                self.bins.accept(requests)
                removed[i] = bucket_accepted
        if removed.any():
            self.pool.remove_bulk(removed)

        waits = np.concatenate(wait_chunks) if wait_chunks else _EMPTY
        return int(removed.sum()), waits

    def step(self) -> RoundRecord:
        """Advance one round: probe, commit, capped-accept, FIFO-delete."""
        self.round += 1
        t = self.round

        generated = self.arrivals.arrivals(t, self.rng)
        self.pool.add(t, generated)
        thrown = self.pool.size

        if self.kernel == "fused":
            accepted_total, wait_values, wait_counts = self._resolve_fused(t, thrown)
        else:
            accepted_total, waits = self._resolve_legacy(t)
            wait_values, wait_counts = _wait_histogram(waits)

        deleted = self.bins.delete_one_each()

        return RoundRecord(
            round=t,
            arrivals=generated,
            thrown=thrown,
            accepted=accepted_total,
            deleted=deleted,
            pool_size=self.pool.size,
            total_load=self.bins.total_load,
            max_load=int(self.bins.loads.max()),
            wait_values=wait_values,
            wait_counts=wait_counts,
        )

    def check_invariants(self) -> None:
        """Pool and bin-state consistency."""
        self.pool.check_invariants()
        self.bins.check_invariants()
        oldest = self.pool.oldest_label
        if oldest is not None and oldest > self.round:
            raise InvariantViolation("pool contains balls from the future")

    def get_state(self) -> dict:
        """Checkpoint the full process state (pool, bins, RNG, round)."""
        return {
            "round": self.round,
            "pool": self.pool.get_state(),
            "bins": self.bins.get_state(),
            "rng": self.rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state` (same n/c/λ/d process)."""
        self.round = int(state["round"])
        self.pool.set_state(state["pool"])
        self.bins.set_state(state["bins"])
        self.rng.bit_generator.state = state["rng"]
        self.check_invariants()
