"""Baseline processes from the paper's related work.

Each baseline is implemented against the same round-process interface as
the core simulators so that the comparison experiments and the engine's
driver work uniformly:

* :mod:`repro.processes.greedy` — batch-parallel GREEDY[d] with leaky bins
  (Berenbrink et al., PODC'16 / Algorithmica'18); the paper's primary
  comparison target.
* :mod:`repro.processes.threshold` — the static parallel THRESHOLD[T]
  protocol of Adler et al.
* :mod:`repro.processes.sequential` — classical sequential one-choice and
  GREEDY[d] (Azar et al.) static allocations.
* :mod:`repro.processes.always_go_left` — Vöcking's asymmetric
  ALWAYS-GO-LEFT[d].
* :mod:`repro.processes.becchetti` — self-stabilizing repeated
  balls-into-bins (Becchetti et al., SPAA'15).
* :mod:`repro.processes.adler_parallel` — the infinite parallel d-copy
  FIFO process of Adler, Berenbrink, Schröder (ESA'98).
* :mod:`repro.processes.lenzen` — a simplified heavily-loaded parallel
  threshold allocator after Lenzen, Parter, Yogev (SPAA'19).
* :mod:`repro.processes.capped_dchoice` — CAPPED(c, λ) with d probes per
  ball, the capacity-vs-choices ablation.
* :mod:`repro.processes.stemann` — Stemann's collision protocol (SPAA'96).
* :mod:`repro.processes.infinite_sequential` — Azar et al.'s infinite
  sequential GREEDY[d] with deletions.
"""

from repro.processes.adler_parallel import AdlerParallelProcess
from repro.processes.always_go_left import always_go_left
from repro.processes.becchetti import RepeatedBallsProcess
from repro.processes.capped_dchoice import CappedDChoiceProcess
from repro.processes.greedy import GreedyBatchProcess
from repro.processes.infinite_sequential import InfiniteSequentialGreedy
from repro.processes.lenzen import heavily_loaded_threshold
from repro.processes.sequential import sequential_greedy_d, sequential_one_choice
from repro.processes.stemann import stemann_collision
from repro.processes.threshold import threshold_allocate

__all__ = [
    "GreedyBatchProcess",
    "CappedDChoiceProcess",
    "threshold_allocate",
    "stemann_collision",
    "InfiniteSequentialGreedy",
    "sequential_one_choice",
    "sequential_greedy_d",
    "always_go_left",
    "RepeatedBallsProcess",
    "AdlerParallelProcess",
    "heavily_loaded_threshold",
]
