"""Stemann's collision protocol (SPAA'96) — simplified variant.

Stemann's parallel allocation matches the Adler et al. lower bound for
static parallel balls-into-bins: each ball fixes **two** candidate bins up
front, and allocation proceeds in synchronous *collision rounds*. In each
round every unallocated ball asks both its candidates; any bin whose total
pending requests (plus already-committed load) does not exceed the current
collision threshold accepts all its requesters. Balls accepted by both
candidates commit to one arbitrarily; the rest retry with the *same*
candidates. The threshold grows each round, guaranteeing termination.

We implement the natural threshold schedule τ_r = r (1, 2, 3, ...). The
defining structural property — every ball ends up in one of its two
initially-chosen bins, unlike the resample-every-round THRESHOLD[T] — is
what the tests pin down, alongside termination in O(log log n) rounds for
m = n and a final maximum load bounded by the last threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rng import resolve_rng

__all__ = ["StemannResult", "stemann_collision"]


@dataclass(frozen=True, slots=True)
class StemannResult:
    """Outcome of a collision-protocol run.

    Attributes
    ----------
    rounds:
        Collision rounds until every ball committed.
    max_load:
        Maximum final bin load (≤ the final threshold by construction).
    loads:
        Final per-bin loads.
    assignment:
        Ball → bin commitments.
    candidates:
        The (m, 2) candidate matrix fixed before round one.
    """

    rounds: int
    max_load: int
    loads: np.ndarray
    assignment: np.ndarray
    candidates: np.ndarray


def stemann_collision(
    m: int,
    n: int,
    rng=None,
    max_rounds: int = 10_000,
) -> StemannResult:
    """Run the collision protocol until all ``m`` balls commit.

    Parameters
    ----------
    m:
        Number of balls.
    n:
        Number of bins (n ≥ 2 so two distinct candidates exist).
    max_rounds:
        Safety limit; with τ_r = r termination is guaranteed once
        τ ≥ m, so hitting this indicates a bug.
    """
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if n < 2:
        raise ConfigurationError(f"need at least two bins, got n={n}")
    generator = resolve_rng(rng, "stemann")

    # Two distinct candidates per ball, fixed for the whole protocol.
    first = generator.integers(0, n, size=m)
    offset = generator.integers(1, n, size=m)
    second = (first + offset) % n
    candidates = np.stack([first, second], axis=1)

    assignment = np.full(m, -1, dtype=np.int64)
    loads = np.zeros(n, dtype=np.int64)
    unallocated = np.arange(m)
    rounds = 0
    while len(unallocated):
        if rounds >= max_rounds:
            raise SimulationError(f"collision protocol did not finish within {max_rounds} rounds")
        rounds += 1
        threshold = rounds  # τ_r = r
        pending = candidates[unallocated]
        requests = np.bincount(pending.ravel(), minlength=n)
        # A bin accepts all requesters iff its committed load plus its
        # pending requests fit under the threshold.
        accepting = (loads + requests) <= threshold
        first_ok = accepting[pending[:, 0]]
        second_ok = accepting[pending[:, 1]]
        committed = first_ok | second_ok
        # Accepted by both -> take the first candidate (arbitrary rule).
        target = np.where(first_ok, pending[:, 0], pending[:, 1])
        chosen_balls = unallocated[committed]
        assignment[chosen_balls] = target[committed]
        if len(chosen_balls):
            loads += np.bincount(target[committed], minlength=n)
        unallocated = unallocated[~committed]

    return StemannResult(
        rounds=rounds,
        max_load=int(loads.max()) if n else 0,
        loads=loads,
        assignment=assignment,
        candidates=candidates,
    )
