"""Self-stabilizing repeated balls-into-bins (Becchetti et al., SPAA'15).

A fixed population of ``n`` balls lives in ``n`` bins. In every round, each
*non-empty* bin selects one of its balls, and all selected balls are
simultaneously reallocated to bins chosen independently and uniformly at
random (one choice per ball). Becchetti et al. show that from any initial
configuration the system reaches maximum load ``O(log n)`` within ``O(n)``
rounds w.h.p., and stays there for poly(n) rounds.

The ball count is conserved — a useful conservation-law target for
property-based tests — and the process doubles as a self-stabilisation
baseline in the comparison experiments.
"""

from __future__ import annotations

import numpy as np

from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng

__all__ = ["RepeatedBallsProcess"]

_EMPTY = np.zeros(0, dtype=np.int64)


class RepeatedBallsProcess:
    """Repeated balls-into-bins with one reallocation per non-empty bin.

    Parameters
    ----------
    n:
        Number of bins (and, by default, of balls).
    initial_loads:
        Optional starting configuration; defaults to the adversarial
        single-bin pile-up (all n balls in bin 0), the hardest case for
        self-stabilisation.
    rng:
        Seed, generator, or factory.
    """

    def __init__(self, n: int, initial_loads: np.ndarray | None = None, rng=None) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        self.n = n
        self.rng = resolve_rng(rng, "becchetti")
        if initial_loads is None:
            loads = np.zeros(n, dtype=np.int64)
            loads[0] = n
        else:
            loads = np.asarray(initial_loads, dtype=np.int64).copy()
            if loads.shape != (n,):
                raise ConfigurationError(f"initial_loads must have shape ({n},)")
            if np.any(loads < 0):
                raise ConfigurationError("initial_loads must be non-negative")
        self.loads = loads
        self.total_balls = int(loads.sum())
        self.round = 0

    @property
    def pool_size(self) -> int:
        """Balls in flight between bins — always 0 at round boundaries."""
        return 0

    def step(self) -> RoundRecord:
        """One round: every non-empty bin emits one ball; all re-land u.a.r."""
        self.round += 1
        nonempty = self.loads > 0
        movers = int(np.count_nonzero(nonempty))
        self.loads[nonempty] -= 1
        if movers:
            landing = np.bincount(self.rng.integers(0, self.n, size=movers), minlength=self.n)
            self.loads += landing
        return RoundRecord(
            round=self.round,
            arrivals=0,
            thrown=movers,
            accepted=movers,
            deleted=0,
            pool_size=0,
            total_load=int(self.loads.sum()),
            max_load=int(self.loads.max()),
            wait_values=_EMPTY,
            wait_counts=_EMPTY,
        )

    def run_until_balanced(self, target_max_load: int, max_rounds: int) -> int | None:
        """Rounds until the max load first drops to ``target_max_load``.

        Returns the round index, or ``None`` if not reached within
        ``max_rounds`` (Becchetti et al. predict O(n) rounds to reach
        O(log n) from any configuration).
        """
        if int(self.loads.max()) <= target_max_load:
            return self.round
        for _ in range(max_rounds):
            record = self.step()
            if record.max_load <= target_max_load:
                return record.round
        return None

    def check_invariants(self) -> None:
        """Ball conservation and non-negativity."""
        if np.any(self.loads < 0):
            raise InvariantViolation("negative load in repeated balls-into-bins")
        if int(self.loads.sum()) != self.total_balls:
            raise InvariantViolation(
                f"ball count changed: {int(self.loads.sum())} != {self.total_balls}"
            )
