"""Infinite sequential GREEDY[d] with deletions (Azar et al., Section on
the infinite process; cf. Cole et al., RANDOM'98).

A fixed population of ``n`` balls lives in ``n`` bins. In every step, one
ball chosen uniformly at random is removed and immediately reinserted with
the GREEDY[d] rule (commit to the least loaded of d uniform bins). Azar et
al. show that from *any* initial configuration, after ``O(n² log log n)``
steps the maximum load is ``ln n/ln d + O(1)`` w.h.p., and Cole et al.
sharpen the typical behaviour to ``log log n/ log d + O(1)`` over
polynomially many steps.

This is the sequential self-healing counterpart of the repeated parallel
process of Becchetti et al.; both recover from adversarial pile-ups, and
the comparison test quantifies the d-choice advantage in the recovered
state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation
from repro.rng import resolve_rng

__all__ = ["InfiniteSequentialGreedy"]


class InfiniteSequentialGreedy:
    """Random-ball reinsertion with the d-choice rule.

    Parameters
    ----------
    n:
        Number of bins and of balls.
    d:
        Choices per reinsertion (d ≥ 1).
    initial_assignment:
        Optional ball → bin array; defaults to the adversarial pile-up
        (every ball in bin 0).
    """

    def __init__(
        self,
        n: int,
        d: int,
        initial_assignment: np.ndarray | None = None,
        rng=None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one bin, got n={n}")
        if d < 1:
            raise ConfigurationError(f"need at least one choice, got d={d}")
        self.n = n
        self.d = d
        self.rng = resolve_rng(rng, "infinite-sequential")
        if initial_assignment is None:
            assignment = np.zeros(n, dtype=np.int64)
        else:
            assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
            if assignment.shape != (n,):
                raise ConfigurationError(f"assignment must have shape ({n},)")
            if np.any((assignment < 0) | (assignment >= n)):
                raise ConfigurationError("assignment entries must be bin indices")
        self.assignment = assignment
        self.loads = np.bincount(assignment, minlength=n).astype(np.int64)
        self.steps = 0

    @property
    def max_load(self) -> int:
        """Current maximum bin load."""
        return int(self.loads.max())

    def step(self) -> None:
        """Reallocate one uniformly random ball via GREEDY[d]."""
        self.steps += 1
        ball = int(self.rng.integers(0, self.n))
        self.loads[self.assignment[ball]] -= 1
        choices = self.rng.integers(0, self.n, size=self.d)
        target = int(choices[int(np.argmin(self.loads[choices]))])
        self.assignment[ball] = target
        self.loads[target] += 1

    def run(self, steps: int) -> int:
        """Advance ``steps`` reallocations; return the final max load."""
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self.max_load

    def run_until_max_load(self, target: int, max_steps: int) -> int | None:
        """Steps until the max load first reaches ``target`` (None if never)."""
        if self.max_load <= target:
            return self.steps
        for _ in range(max_steps):
            self.step()
            if self.max_load <= target:
                return self.steps
        return None

    def check_invariants(self) -> None:
        """Ball conservation and load/assignment consistency."""
        if int(self.loads.sum()) != self.n:
            raise InvariantViolation("ball count changed")
        recomputed = np.bincount(self.assignment, minlength=self.n)
        if not np.array_equal(recomputed, self.loads):
            raise InvariantViolation("loads inconsistent with assignment")
