"""Heavily-loaded parallel threshold allocation (after Lenzen–Parter–Yogev).

"Parallel Balanced Allocations: The Heavily Loaded Case" (SPAA'19) gives a
parallel threshold algorithm allocating ``m ≫ n`` balls with maximum load
``m/n + O(1)`` in ``O(log log(m/n) + log* n)`` communication rounds.

We implement the natural simplified variant that captures its behaviour:
every bin advertises a *cumulative* load threshold ``⌈m/n⌉ + slack``; in
each round every unallocated ball picks a uniform bin, and bins accept
arrivals while below the threshold. Rejected balls retry. This achieves
``m/n + O(1)`` load by construction and terminates in a few rounds for any
``m/n ≥ 1``; the round count (not its constant) is the reproduction target.
The full algorithm's round-optimal schedule is noted in DESIGN.md as a
documented simplification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rng import resolve_rng

__all__ = ["HeavilyLoadedResult", "heavily_loaded_threshold"]


@dataclass(frozen=True, slots=True)
class HeavilyLoadedResult:
    """Outcome of a heavily-loaded threshold run.

    Attributes
    ----------
    rounds:
        Communication rounds until all balls were placed.
    max_load:
        Maximum final bin load — guaranteed ≤ ``ceil(m/n) + slack``.
    loads:
        Final per-bin loads.
    overhead:
        ``max_load − m/n``, the additive gap the SPAA'19 bound controls.
    """

    rounds: int
    max_load: int
    loads: np.ndarray
    overhead: float


def heavily_loaded_threshold(
    m: int,
    n: int,
    slack: int = 2,
    rng=None,
    max_rounds: int = 10_000,
) -> HeavilyLoadedResult:
    """Allocate ``m ≥ n`` balls with cumulative threshold ``⌈m/n⌉ + slack``.

    Parameters
    ----------
    slack:
        Additive headroom above the average load; must leave total
        capacity ``n·(⌈m/n⌉ + slack) ≥ m`` (checked).
    """
    if n < 1:
        raise ConfigurationError(f"need at least one bin, got n={n}")
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if slack < 0:
        raise ConfigurationError(f"slack must be non-negative, got {slack}")
    threshold = -(-m // n) + slack  # ceil(m/n) + slack
    if threshold * n < m:
        raise ConfigurationError(
            f"total capacity {threshold * n} cannot hold {m} balls; increase slack"
        )
    generator = resolve_rng(rng, "lenzen")

    loads = np.zeros(n, dtype=np.int64)
    unallocated = m
    rounds = 0
    while unallocated > 0:
        if rounds >= max_rounds:
            raise SimulationError(
                f"heavily-loaded allocation did not finish within {max_rounds} rounds"
            )
        rounds += 1
        requests = np.bincount(generator.integers(0, n, size=unallocated), minlength=n)
        accepted = np.minimum(requests, threshold - loads)
        loads += accepted
        unallocated -= int(accepted.sum())

    return HeavilyLoadedResult(
        rounds=rounds,
        max_load=int(loads.max()),
        loads=loads,
        overhead=float(loads.max() - m / n),
    )
