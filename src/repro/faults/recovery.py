"""Recovery-time metrics: empirical self-stabilization after a fault.

The question asked by the self-stabilizing balls-into-bins line of work is
not whether a perturbed system *eventually* returns to its stationary
behaviour (positive recurrence gives that for λ < 1) but *how fast*. This
module quantifies it: fit a **stationary band** to a pre-fault window of a
series (pool size, per-round p99 waiting time, …), then measure the
**time-to-return** — the first post-fault round from which the series stays
inside the band for a sustained stretch.

The sustain requirement matters: a draining pool can dip through the band
transiently while still carrying an age backlog, and a single in-band sample
is not recovery. The band half-width is ``max(width·std, rel_floor·|mean|,
abs_floor)`` — the floors keep near-constant pre-fault series (std ≈ 0) from
producing an unreachably thin band.

Back-of-envelope expectation for CAPPED(c, λ): a fault that builds an excess
backlog of ``B`` balls drains at roughly ``(1 − λ)·n`` balls per round once
service capacity is restored, so recovery time scales like ``B / ((1 − λ)·n)``
— linear in the outage's entity-rounds and ``1/(1 − λ)`` in the load. The
``fault_recovery`` experiment checks this qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "StationaryBand",
    "RecoveryReport",
    "stationary_band",
    "time_to_return",
    "measure_recovery",
    "measure_post_churn_recovery",
    "per_round_p99",
]


@dataclass(frozen=True)
class StationaryBand:
    """A tolerance band ``[lo, hi]`` around a pre-fault stationary mean."""

    mean: float
    std: float
    lo: float
    hi: float

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a recovery measurement on one series.

    ``recovery_index`` is an index into the analysed series (same indexing
    as ``fault_end_index``); ``None`` means the series never re-entered the
    band sustainably within the data. ``recovery_rounds`` counts rounds from
    the end of the fault window to recovery (0 = already recovered when the
    fault cleared).
    """

    band: StationaryBand
    fault_index: int
    fault_end_index: int
    peak_value: float
    peak_index: int
    recovery_index: int | None

    @property
    def recovered(self) -> bool:
        return self.recovery_index is not None

    @property
    def recovery_rounds(self) -> int | None:
        if self.recovery_index is None:
            return None
        return max(0, self.recovery_index - self.fault_end_index)


def stationary_band(
    window,
    width: float = 4.0,
    rel_floor: float = 0.05,
    abs_floor: float = 1.0,
) -> StationaryBand:
    """Fit a stationary band to a pre-fault window of a series."""
    window = np.asarray(window, dtype=float)
    if window.size < 2:
        raise ConfigurationError(
            f"need at least 2 pre-fault samples to fit a band, got {window.size}"
        )
    mean = float(window.mean())
    std = float(window.std())
    half = max(width * std, rel_floor * abs(mean), abs_floor)
    return StationaryBand(mean=mean, std=std, lo=mean - half, hi=mean + half)


def time_to_return(series, band: StationaryBand, start: int, sustain: int = 10) -> int | None:
    """First index ``i >= start`` such that ``series[i : i + sustain]`` lies
    entirely inside ``band``. ``None`` if the series never returns.

    **Partial-confirmation edge:** when the run *ends* inside the band but
    with fewer than ``sustain`` trailing in-band samples, the start of that
    trailing in-band stretch is still returned. A truncated run that has
    visibly re-entered the band should report the entry round, not
    ``None`` — the sustain requirement guards against transient dips
    *through* the band, and a run that ends inside it never dipped back
    out. (A series that ends outside the band still returns ``None``.)
    """
    series = np.asarray(series, dtype=float)
    if sustain < 1:
        raise ConfigurationError(f"sustain must be >= 1, got {sustain}")
    inside = (series >= band.lo) & (series <= band.hi)
    first = max(0, start)
    for i in range(first, series.size - sustain + 1):
        if inside[i : i + sustain].all():
            return i
    # Partially-confirmed tail: the run ended mid-sustain but in band.
    if series.size and inside[-1]:
        tail = series.size
        while tail > first and inside[tail - 1]:
            tail -= 1
        if tail < series.size:
            return tail
    return None


def measure_recovery(
    series,
    fault_index: int,
    fault_end_index: int,
    pre_window: int,
    sustain: int = 10,
    width: float = 4.0,
    rel_floor: float = 0.05,
    abs_floor: float = 1.0,
) -> RecoveryReport:
    """Measure recovery of ``series`` from a fault window.

    Parameters
    ----------
    series:
        Per-round values, one per simulated round (index = round - 1 when
        recording from round 1).
    fault_index / fault_end_index:
        Indices of the round the fault was injected and the round it
        cleared (for a one-shot burst at round ``t`` with duration ``d``
        recorded from round 1: ``t - 1`` and ``t + d - 1``).
    pre_window:
        Number of samples immediately before ``fault_index`` used to fit
        the stationary band.
    """
    series = np.asarray(series, dtype=float)
    if not 0 < fault_index <= fault_end_index < series.size:
        raise ConfigurationError(
            f"fault window [{fault_index}, {fault_end_index}] outside series of "
            f"length {series.size}"
        )
    if pre_window < 2 or pre_window > fault_index:
        raise ConfigurationError(f"pre_window must be in [2, fault_index], got {pre_window}")
    band = stationary_band(
        series[fault_index - pre_window : fault_index],
        width=width,
        rel_floor=rel_floor,
        abs_floor=abs_floor,
    )
    scan = series[fault_index:]
    peak_offset = int(np.argmax(np.abs(scan - band.mean)))
    recovery = time_to_return(series, band, start=fault_end_index, sustain=sustain)
    return RecoveryReport(
        band=band,
        fault_index=fault_index,
        fault_end_index=fault_end_index,
        peak_value=float(scan[peak_offset]),
        peak_index=fault_index + peak_offset,
        recovery_index=recovery,
    )


def measure_post_churn_recovery(
    series,
    churn_index: int,
    tail_window: int,
    sustain: int = 10,
    width: float = 4.0,
    rel_floor: float = 0.05,
    abs_floor: float = 1.0,
) -> RecoveryReport:
    """Measure settling after a *membership* change (join/leave burst).

    Unlike a fault, churn permanently moves the equilibrium: after a 25%
    leave burst the pool settles around a *new* (higher) stationary level,
    so a band fitted to the pre-churn window may never be re-entered. The
    stationary band is therefore fitted to the last ``tail_window`` samples
    — the post-churn equilibrium the run actually settled into — and the
    time-to-return measures how long after ``churn_index`` the series first
    sustainably reaches that new level.

    The tail must itself have settled for the report to mean anything; the
    caller is responsible for running well past the transient (the
    ``churn_recovery`` experiment uses the final quarter of the run).
    """
    series = np.asarray(series, dtype=float)
    if not 0 < churn_index < series.size:
        raise ConfigurationError(
            f"churn_index {churn_index} outside series of length {series.size}"
        )
    if tail_window < 2 or tail_window > series.size - churn_index:
        raise ConfigurationError(
            f"tail_window must be in [2, {series.size - churn_index}], got {tail_window}"
        )
    band = stationary_band(
        series[series.size - tail_window :],
        width=width,
        rel_floor=rel_floor,
        abs_floor=abs_floor,
    )
    scan = series[churn_index:]
    peak_offset = int(np.argmax(np.abs(scan - band.mean)))
    recovery = time_to_return(series, band, start=churn_index, sustain=sustain)
    return RecoveryReport(
        band=band,
        fault_index=churn_index,
        fault_end_index=churn_index,
        peak_value=float(scan[peak_offset]),
        peak_index=churn_index + peak_offset,
        recovery_index=recovery,
    )


def per_round_p99(records) -> np.ndarray:
    """Per-round p99 waiting time from a sequence of RoundRecords.

    Uses each record's sparse ``(wait_values, wait_counts)`` histogram.
    Rounds with no finalized waits carry the previous round's value forward
    (0.0 before the first observation) so the series stays aligned with the
    pool-size series.
    """
    out = np.zeros(len(records), dtype=float)
    last = 0.0
    for i, record in enumerate(records):
        total = int(np.sum(record.wait_counts)) if len(record.wait_counts) else 0
        if total:
            cumulative = np.cumsum(record.wait_counts)
            rank = int(np.searchsorted(cumulative, np.ceil(0.99 * total)))
            rank = min(rank, len(record.wait_values) - 1)
            last = float(record.wait_values[rank])
        out[i] = last
    return out
