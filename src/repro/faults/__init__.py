"""Fault injection and recovery measurement for the simulators.

Layer 1 of the robustness subsystem: declarative fault schedules
(:mod:`repro.faults.schedule`), an observer-based injector that applies them
to :class:`~repro.core.capped.CappedProcess`-style ball processes and to
:class:`~repro.cluster.farm.ServerFarm` (:mod:`repro.faults.injector`), and
recovery-time metrics that quantify empirical self-stabilization
(:mod:`repro.faults.recovery`).

Layer 2 — harness-level chaos hooks used to test the hardened parallel
runner — lives in :mod:`repro.faults.chaos` and is inert unless the
``REPRO_CHAOS`` environment variable is set.
"""

from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    RecoveryReport,
    StationaryBand,
    measure_post_churn_recovery,
    measure_recovery,
    per_round_p99,
    stationary_band,
)
from repro.faults.schedule import (
    CapacityDegradation,
    CrashBurst,
    FaultSchedule,
    PeriodicOutage,
    RequestDrop,
    StochasticCrashes,
)

__all__ = [
    "FaultSchedule",
    "CrashBurst",
    "PeriodicOutage",
    "StochasticCrashes",
    "CapacityDegradation",
    "RequestDrop",
    "FaultInjector",
    "RecoveryReport",
    "StationaryBand",
    "stationary_band",
    "measure_recovery",
    "measure_post_churn_recovery",
    "per_round_p99",
]
