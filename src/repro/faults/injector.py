"""The fault injector: applies a :class:`~repro.faults.schedule.FaultSchedule`
to a live simulator through the observer pipeline.

The injector implements the engine's :class:`~repro.engine.observers.Observer`
protocol — ``on_round(record, process)`` — so it plugs into
:class:`~repro.engine.driver.SimulationDriver` (for ball processes) and
:class:`~repro.cluster.farm.ServerFarm` (which runs the same observer pipeline
per tick) without touching any simulator inner loop. Observers fire at the end
of round ``t``, so an event scheduled ``at_round = t`` first affects round
``t + 1``.

Two adapters translate schedule events into simulator mutations:

* ball processes (anything exposing a ``bins`` :class:`~repro.balls.bin_array.
  BinArray` and an age ``pool``) — bins go down/up, capacities change, pool
  balls are shed;
* :class:`~repro.cluster.farm.ServerFarm` — servers fail/recover, queue
  capacities change, pending requests are shed.

Determinism: all stochastic choices come from a dedicated RNG stream derived
from ``schedule.seed`` (``RngFactory(seed).generator("faults")``), never from
the process's own RNG, so the same (schedule, process-seed) pair reproduces a
faulty run exactly and the fault-free trajectory is unchanged by merely
attaching an injector with an empty schedule.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.schedule import (
    CapacityDegradation,
    CrashBurst,
    FaultSchedule,
    PeriodicOutage,
    RequestDrop,
    StochasticCrashes,
)
from repro.rng import RngFactory
from repro.telemetry.runtime import current as _telemetry_current

__all__ = ["FaultInjector"]


class _BallProcessAdapter:
    """Mutates a CAPPED-style process: ``bins`` is a BinArray, ``pool`` an AgePool."""

    def __init__(self, process: Any) -> None:
        self.bins = process.bins
        self.pool = process.pool

    @property
    def n(self) -> int:
        return self.bins.n

    def down_mask(self) -> np.ndarray:
        return self.bins.down

    def crash(self, indices: np.ndarray, wipe: bool) -> int:
        return self.bins.set_down(indices, wipe=wipe)

    def recover(self, indices: np.ndarray) -> None:
        self.bins.set_up(indices)

    def get_capacity(self, indices: np.ndarray) -> np.ndarray:
        return self.bins.capacity_of(indices)

    def set_capacity(self, indices: np.ndarray, values) -> None:
        self.bins.set_capacity(values, indices=indices)

    def shed(self, fraction: float) -> int:
        """Drop the youngest ``fraction`` of the pool; returns the count."""
        to_drop = int(fraction * self.pool.size)
        remaining = to_drop
        # Youngest first: iterate the age buckets from the newest label.
        for label, count in zip(reversed(self.pool.labels()), reversed(self.pool.counts())):
            if remaining <= 0:
                break
            take = min(count, remaining)
            self.pool.remove(label, take)
            remaining -= take
        return to_drop - remaining


class _FarmAdapter:
    """Mutates a :class:`~repro.cluster.farm.ServerFarm`."""

    def __init__(self, process: Any) -> None:
        self.farm = process

    @property
    def n(self) -> int:
        return self.farm.num_servers

    def down_mask(self) -> np.ndarray:
        return np.asarray([s.down for s in self.farm.servers], dtype=bool)

    def crash(self, indices: np.ndarray, wipe: bool) -> int:
        lost = 0
        for index in indices:
            lost += len(self.farm.servers[int(index)].fail(wipe=wipe))
        return lost

    def recover(self, indices: np.ndarray) -> None:
        for index in indices:
            self.farm.servers[int(index)].recover()

    def get_capacity(self, indices: np.ndarray) -> np.ndarray:
        capacities = [self.farm.servers[int(i)].capacity for i in indices]
        if any(c is None for c in capacities):
            raise ConfigurationError("cannot degrade an unbounded server")
        return np.asarray(capacities, dtype=np.int64)

    def set_capacity(self, indices: np.ndarray, values) -> None:
        values = np.broadcast_to(np.asarray(values, dtype=np.int64), indices.shape)
        for index, value in zip(indices, values):
            self.farm.servers[int(index)].set_capacity(int(value))

    def shed(self, fraction: float) -> int:
        pending = self.farm.pending
        to_drop = int(fraction * len(pending))
        if to_drop:
            # pending is sorted oldest-first; shed from the tail (youngest).
            del pending[len(pending) - to_drop :]
        return to_drop


class FaultInjector:
    """Observer that applies a fault schedule to the observed process.

    Attach it to a driver (``SimulationDriver(..., observers=[injector])``)
    or a farm (``ServerFarm(..., observers=[injector])``). The first
    ``on_round`` call binds the injector to that process; reuse across
    processes is an error (build one injector per run).

    Attributes
    ----------
    crashes / recoveries:
        Total crash and recovery transitions applied.
    balls_lost:
        Balls/requests destroyed by wiped buffers.
    requests_dropped:
        Pool/pending entries shed by :class:`RequestDrop` events.
    down_rounds:
        Sum over rounds of the number of entities down (entity-rounds of
        outage actually imposed).
    events_log:
        ``(round, description)`` tuples for every applied action.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ConfigurationError(
                f"schedule must be a FaultSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self._rng = RngFactory(schedule.seed).generator("faults")
        self._adapter = None
        self._process = None
        # index -> recovery round (None = no scheduled recovery).
        self._down: dict[int, int | None] = {}
        # Subset of down entities whose recovery is governed by a
        # StochasticCrashes coin rather than a scheduled round.
        self._stochastic_down: set[int] = set()
        # Pending capacity restorations: (restore_round, indices, saved values).
        self._restores: list[tuple[int, np.ndarray, np.ndarray]] = []
        self.crashes = 0
        self.recoveries = 0
        self.balls_lost = 0
        self.requests_dropped = 0
        self.down_rounds = 0
        self.events_log: list[tuple[int, str]] = []

    @property
    def down_count(self) -> int:
        """Entities currently down."""
        return len(self._down)

    @property
    def all_clear(self) -> bool:
        """True when no entity is down and no restoration is pending."""
        return not self._down and not self._restores

    def _bind(self, process: Any):
        if self._adapter is not None:
            if process is not self._process:
                raise ConfigurationError(
                    "a FaultInjector is bound to one process; build one per run"
                )
            return self._adapter
        if hasattr(process, "bins") and hasattr(process, "pool"):
            self._adapter = _BallProcessAdapter(process)
        elif hasattr(process, "servers") and hasattr(process, "pending"):
            self._adapter = _FarmAdapter(process)
        else:
            raise ConfigurationError(
                f"don't know how to inject faults into {type(process).__name__}: "
                "expected a ball process (bins + pool) or a server farm"
            )
        self._process = process
        return self._adapter

    def _note(self, t: int, description: str, action: str) -> None:
        """Record one applied fault action in the log (and telemetry)."""
        self.events_log.append((t, description))
        tel = _telemetry_current()
        if tel is not None:
            tel.inc("fault_events_total", action=action)
            tel.emit({"type": "fault", "round": t, "action": action, "description": description})

    def get_state(self) -> dict:
        """Checkpoint the injector's mutable mid-schedule state.

        The schedule itself is immutable configuration; what must survive a
        restore is the *position* within it: which entities are down (and
        when they recover), which are under stochastic-recovery coins,
        pending capacity restorations, the fault RNG stream, the counters,
        and the event log. With these restored, a resumed run applies the
        exact same remaining faults as an uninterrupted one.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "down": [[index, recover] for index, recover in sorted(self._down.items())],
            "stochastic_down": sorted(self._stochastic_down),
            "restores": [
                [restore_round, indices.tolist(), saved.tolist()]
                for restore_round, indices, saved in self._restores
            ],
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "balls_lost": self.balls_lost,
            "requests_dropped": self.requests_dropped,
            "down_rounds": self.down_rounds,
            "events_log": [[t, description] for t, description in self.events_log],
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`get_state`.

        The injector may be restored before or after binding: the adapter
        is rebuilt lazily on the next ``on_round``, and the down/degraded
        masks it mutates live in the process's own checkpointed state.
        """
        self._rng.bit_generator.state = state["rng"]
        self._down = {
            int(index): (None if recover is None else int(recover))
            for index, recover in state["down"]
        }
        self._stochastic_down = {int(index) for index in state["stochastic_down"]}
        self._restores = [
            (
                int(restore_round),
                np.asarray(indices, dtype=np.int64),
                np.asarray(saved, dtype=np.int64),
            )
            for restore_round, indices, saved in state["restores"]
        ]
        self.crashes = int(state["crashes"])
        self.recoveries = int(state["recoveries"])
        self.balls_lost = int(state["balls_lost"])
        self.requests_dropped = int(state["requests_dropped"])
        self.down_rounds = int(state["down_rounds"])
        self.events_log = [(int(t), str(description)) for t, description in state["events_log"]]

    def remap_entities(self, mapping) -> None:
        """Rewrite per-entity bookkeeping after a membership compaction.

        Churn (``repro.churn``) removes entities by index, compacting the
        survivors; ``mapping[old_index]`` gives the new index (``-1`` =
        removed). Mutating observers broadcast this after every shrink.
        Removed entities simply drop out of the down map / stochastic set /
        pending restorations — their outage ended with their membership.
        Aggregate counters are history and stay untouched.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        self._down = {
            int(mapping[index]): recover
            for index, recover in self._down.items()
            if mapping[index] >= 0
        }
        self._stochastic_down = {
            int(mapping[index]) for index in self._stochastic_down if mapping[index] >= 0
        }
        restores = []
        for restore_round, indices, saved in self._restores:
            new_indices = mapping[indices]
            keep = new_indices >= 0
            if keep.any():
                restores.append((restore_round, new_indices[keep], saved[keep]))
        self._restores = restores

    # -- event application -------------------------------------------------

    def _pick_up_entities(self, adapter, fraction: float) -> np.ndarray:
        """Choose a random ``fraction`` of currently-up entities (at least one)."""
        up = np.flatnonzero(~adapter.down_mask())
        if up.size == 0:
            return up
        count = min(up.size, max(1, round(fraction * adapter.n)))
        return np.sort(self._rng.choice(up, size=count, replace=False))

    def _crash(
        self,
        adapter,
        t: int,
        indices: np.ndarray,
        wipe: bool,
        recover_round: int | None,
        stochastic: bool,
    ) -> None:
        if indices.size == 0:
            return
        lost = adapter.crash(indices, wipe=wipe)
        self.balls_lost += lost
        self.crashes += int(indices.size)
        for index in indices:
            self._down[int(index)] = recover_round
            if stochastic:
                self._stochastic_down.add(int(index))
        policy = "wiped" if wipe else "preserved"
        until = f" until {recover_round}" if recover_round is not None else ""
        self._note(t, f"crash {indices.size} ({policy}, lost {lost}){until}", "crash")

    def _recover(self, adapter, t: int, indices: np.ndarray) -> None:
        if indices.size == 0:
            return
        adapter.recover(indices)
        self.recoveries += int(indices.size)
        for index in indices:
            self._down.pop(int(index), None)
            self._stochastic_down.discard(int(index))
        self._note(t, f"recover {indices.size}", "recover")

    def on_round(self, record, process: Any) -> None:
        adapter = self._bind(process)
        t = record.round

        # 1. Restore capacity degradations expiring now.
        if self._restores:
            due = [r for r in self._restores if r[0] == t]
            if due:
                self._restores = [r for r in self._restores if r[0] != t]
                for _, indices, saved in due:
                    adapter.set_capacity(indices, saved)
                    self._note(t, f"restore capacity of {indices.size}", "restore")

        # 2. Scheduled recoveries due now.
        due_up = np.asarray(sorted(i for i, r in self._down.items() if r == t), dtype=np.int64)
        self._recover(adapter, t, due_up)

        # 3. Scheduled events firing now.
        for event in self.schedule.events:
            if isinstance(event, CrashBurst):
                if event.at_round == t:
                    victims = self._pick_up_entities(adapter, event.fraction)
                    recover_round = t + event.duration if event.duration is not None else None
                    self._crash(
                        adapter,
                        t,
                        victims,
                        event.buffer_policy == "wiped",
                        recover_round,
                        stochastic=False,
                    )
            elif isinstance(event, PeriodicOutage):
                if t >= event.first_round and (t - event.first_round) % event.period == 0:
                    victims = self._pick_up_entities(adapter, event.fraction)
                    self._crash(
                        adapter,
                        t,
                        victims,
                        event.buffer_policy == "wiped",
                        t + event.duration,
                        stochastic=False,
                    )
            elif isinstance(event, CapacityDegradation):
                if event.at_round == t:
                    if event.fraction >= 1.0:
                        indices = np.arange(adapter.n, dtype=np.int64)
                    else:
                        count = max(1, round(event.fraction * adapter.n))
                        indices = np.sort(self._rng.choice(adapter.n, size=count, replace=False))
                    saved = adapter.get_capacity(indices)
                    adapter.set_capacity(indices, event.capacity)
                    self._restores.append((t + event.duration, indices, saved))
                    self._note(
                        t, f"degrade capacity of {indices.size} to {event.capacity}", "degrade"
                    )
            elif isinstance(event, RequestDrop):
                if event.at_round == t:
                    dropped = adapter.shed(event.fraction)
                    self.requests_dropped += dropped
                    self._note(t, f"drop {dropped} pending", "drop")
            elif isinstance(event, StochasticCrashes):
                if t >= event.first_round and (event.last_round is None or t <= event.last_round):
                    down_mask = adapter.down_mask()
                    up = np.flatnonzero(~down_mask)
                    if up.size:
                        coins = self._rng.random(up.size)
                        victims = up[coins < event.crash_prob]
                        self._crash(
                            adapter,
                            t,
                            victims,
                            event.buffer_policy == "wiped",
                            None,
                            stochastic=True,
                        )
                    if self._stochastic_down:
                        candidates = np.asarray(sorted(self._stochastic_down), dtype=np.int64)
                        coins = self._rng.random(candidates.size)
                        self._recover(adapter, t, candidates[coins < event.recover_prob])

        self.down_rounds += len(self._down)
