"""Harness-level chaos hooks: deliberately break workers to test the runner.

Layer 2 of the robustness subsystem needs a way to make a worker process
hang, crash, or die mid-task *deterministically* — racing ``pgrep``/``kill``
against a short sweep from a shell script is flaky. Instead, the task entry
point (:func:`repro.parallel.tasks.execute_task`) calls :func:`maybe_chaos`
with the task's label; when the ``REPRO_CHAOS`` environment variable is
unset (always, in production) that is a dictionary lookup and nothing else.

``REPRO_CHAOS`` holds a JSON object::

    {"action": "kill", "match": "r1", "times": 1, "marker_dir": "/tmp/x"}

action:
    ``fail``  — raise :class:`~repro.errors.ChaosInjected` (a retryable error);
    ``hang``  — sleep for ``seconds`` (exercises the task timeout);
    ``crash`` — ``os._exit(13)`` (worker dies, pool breaks);
    ``kill``  — ``SIGKILL`` own process (the harshest worker death).
match:
    Substring of the task label that arms the hook (empty = every task).
times:
    How many injections before the hook stands down.
marker_dir:
    Directory used to count injections *across processes* via atomically
    created marker files, so "kill one worker once" means exactly once even
    though every pool worker inherits the environment. Required for
    ``crash``/``kill`` (without it a retried task would die forever).
seconds:
    Hang duration (default 3600 — far beyond any sane task timeout).

The env-var transport is deliberate: it crosses the ``ProcessPoolExecutor``
boundary for free (workers inherit the parent environment) and cannot leak
into a run that did not explicitly arm it.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time

from repro.errors import ChaosInjected, ConfigurationError

__all__ = ["CHAOS_ENV", "ChaosSpec", "chaos_from_env", "maybe_chaos", "maybe_chaos_round"]

CHAOS_ENV = "REPRO_CHAOS"

_ACTIONS = ("fail", "hang", "crash", "kill")


class ChaosSpec:
    """Parsed chaos configuration (see module docstring for semantics).

    ``at_round`` switches the hook from the task boundary to the simulation
    round loop: the injection fires when the driver completes round
    ``at_round`` (via :func:`maybe_chaos_round`, called after that round's
    checkpoint write, so a resumed run restarts from a snapshot at or
    before the kill point). A spec with ``at_round`` set is ignored by the
    task-boundary hook :func:`maybe_chaos`.
    """

    __slots__ = ("action", "match", "times", "seconds", "marker_dir", "at_round")

    def __init__(
        self,
        action: str,
        match: str = "",
        times: int = 1,
        seconds: float = 3600.0,
        marker_dir: str | None = None,
        at_round: int | None = None,
    ) -> None:
        if action not in _ACTIONS:
            raise ConfigurationError(f"chaos action must be one of {_ACTIONS}, got {action!r}")
        if times < 1:
            raise ConfigurationError(f"chaos times must be >= 1, got {times}")
        if seconds <= 0:
            raise ConfigurationError(f"chaos seconds must be positive, got {seconds}")
        if action in ("crash", "kill") and marker_dir is None:
            raise ConfigurationError(
                f"chaos action {action!r} requires marker_dir: without cross-process "
                "injection counting a retried task would die forever"
            )
        if at_round is not None and at_round < 1:
            raise ConfigurationError(f"chaos at_round must be >= 1, got {at_round}")
        self.action = action
        self.match = match
        self.times = times
        self.seconds = seconds
        self.marker_dir = marker_dir
        self.at_round = at_round

    def to_env(self) -> str:
        """Serialize for the ``REPRO_CHAOS`` environment variable."""
        payload = {
            "action": self.action,
            "match": self.match,
            "times": self.times,
            "seconds": self.seconds,
            "marker_dir": self.marker_dir,
            "at_round": self.at_round,
        }
        return json.dumps(payload)


def chaos_from_env(environ=None) -> ChaosSpec | None:
    """Parse ``REPRO_CHAOS``; None when unset. Raises on malformed JSON
    (a misconfigured chaos run must not silently run clean)."""
    environ = os.environ if environ is None else environ
    raw = environ.get(CHAOS_ENV)
    if not raw:
        return None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as err:
        raise ConfigurationError(f"malformed {CHAOS_ENV}: {err}") from err
    if not isinstance(payload, dict) or "action" not in payload:
        raise ConfigurationError(f"{CHAOS_ENV} must be a JSON object with an 'action'")
    at_round = payload.get("at_round")
    return ChaosSpec(
        action=payload["action"],
        match=payload.get("match", ""),
        times=int(payload.get("times", 1)),
        seconds=float(payload.get("seconds", 3600.0)),
        marker_dir=payload.get("marker_dir"),
        at_round=None if at_round is None else int(at_round),
    )


def _claim_injection(spec: ChaosSpec) -> bool:
    """Atomically claim one of the ``spec.times`` injection slots.

    Marker files created with O_CREAT|O_EXCL make the claim race-free across
    pool workers sharing a marker directory. Without a marker_dir every call
    injects (only safe for ``fail``/``hang`` under a bounded retry budget).
    """
    if spec.marker_dir is None:
        return True
    os.makedirs(spec.marker_dir, exist_ok=True)
    for slot in range(spec.times):
        path = os.path.join(spec.marker_dir, f"chaos-{slot}.marker")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as err:
            if err.errno == errno.EEXIST:
                continue
            raise
        os.write(fd, f"pid={os.getpid()}\n".encode())
        os.close(fd)
        return True
    return False


def maybe_chaos(label: str, spec: ChaosSpec | None = None, environ=None) -> None:
    """Inject the configured fault if armed for this task label.

    No-op (one dict lookup) when ``REPRO_CHAOS`` is unset and no spec is
    passed explicitly.
    """
    if spec is None:
        spec = chaos_from_env(environ)
        if spec is None:
            return
    if spec.at_round is not None:
        # Round-scoped specs fire from the driver loop, not task entry.
        return
    if spec.match and spec.match not in label:
        return
    _fire(spec, label)


def maybe_chaos_round(
    label: str, round_index: int, spec: ChaosSpec | None = None, environ=None
) -> None:
    """Round-loop chaos hook: inject when round ``round_index`` completes.

    Called by :class:`~repro.engine.driver.SimulationDriver` after each
    round (after any due checkpoint write). A no-op unless a spec with
    ``at_round == round_index`` matching ``label`` is armed — the common
    use is ``{"action": "kill", "at_round": N}`` to SIGKILL a checkpointed
    run mid-measure and prove resume-bit-identity.
    """
    if spec is None:
        spec = chaos_from_env(environ)
        if spec is None:
            return
    if spec.at_round is None or spec.at_round != round_index:
        return
    if spec.match and spec.match not in label:
        return
    _fire(spec, label)


def _fire(spec: ChaosSpec, label: str) -> None:
    """Claim an injection slot and execute the configured action."""
    if not _claim_injection(spec):
        return
    if spec.action == "fail":
        raise ChaosInjected(f"injected failure for task {label!r}")
    if spec.action == "hang":
        time.sleep(spec.seconds)
        return
    if spec.action == "crash":
        os._exit(13)
    if spec.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
