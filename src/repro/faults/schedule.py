"""Declarative fault schedules.

A :class:`FaultSchedule` is an immutable description of *what goes wrong
when*: a sequence of fault events plus a seed for any stochastic choices
(which entities crash, when stochastic crash/recover transitions fire).
Schedules carry no simulator state — the same schedule object can drive many
runs — and all randomness is derived from ``schedule.seed`` alone, never from
the simulated process's own RNG, so injecting a fault does not perturb the
arrival/placement randomness of the underlying process. That separation is
what makes fault runs reproducible and comparable against fault-free runs
with the same process seed.

Timing convention: an event with ``at_round = t`` is applied at the *end* of
round ``t`` (observers run after the round completes), so its effects are
first visible in round ``t + 1``. An outage with ``duration = d`` ends at the
end of round ``t + d``: rounds ``t + 1 .. t + d`` are affected and round
``t + d + 1`` is the first normal one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import ConfigurationError

__all__ = [
    "BUFFER_POLICIES",
    "CrashBurst",
    "PeriodicOutage",
    "StochasticCrashes",
    "CapacityDegradation",
    "RequestDrop",
    "FaultEvent",
    "FaultSchedule",
]

#: Crash semantics for buffered state. ``preserved``: a crashed entity keeps
#: its queue frozen and resumes FIFO service on recovery. ``wiped``: queued
#: balls/requests are lost at crash time (counted by the injector).
BUFFER_POLICIES = ("preserved", "wiped")


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")


def _check_buffer_policy(policy: str) -> None:
    if policy not in BUFFER_POLICIES:
        raise ConfigurationError(f"buffer_policy must be one of {BUFFER_POLICIES}, got {policy!r}")


@dataclass(frozen=True)
class CrashBurst:
    """A one-shot outage: a random ``fraction`` of entities crashes at
    ``at_round`` and recovers ``duration`` rounds later.

    ``duration=None`` means the crashed entities never recover within the
    run (a permanent capacity loss).
    """

    at_round: int
    fraction: float
    duration: int | None = None
    buffer_policy: str = "preserved"

    def __post_init__(self) -> None:
        if self.at_round < 1:
            raise ConfigurationError(f"at_round must be >= 1, got {self.at_round}")
        _check_fraction(self.fraction)
        if self.duration is not None and self.duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {self.duration}")
        _check_buffer_policy(self.buffer_policy)


@dataclass(frozen=True)
class PeriodicOutage:
    """A recurring outage: every ``period`` rounds starting at
    ``first_round``, a fresh random ``fraction`` of entities crashes for
    ``duration`` rounds (rolling maintenance / recurring partial failures).
    """

    period: int
    duration: int
    fraction: float
    first_round: int = 1
    buffer_policy: str = "preserved"

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ConfigurationError(f"period must be >= 2, got {self.period}")
        if not 1 <= self.duration < self.period:
            raise ConfigurationError(
                f"duration must be in [1, period), got {self.duration} with period {self.period}"
            )
        _check_fraction(self.fraction)
        if self.first_round < 1:
            raise ConfigurationError(f"first_round must be >= 1, got {self.first_round}")
        _check_buffer_policy(self.buffer_policy)


@dataclass(frozen=True)
class StochasticCrashes:
    """A seeded Markov crash/recover process per entity.

    Each round in ``[first_round, last_round]`` every up entity crashes
    with probability ``crash_prob`` and every down entity recovers with
    probability ``recover_prob``, independently. The stationary down
    fraction is ``crash_prob / (crash_prob + recover_prob)``.
    """

    crash_prob: float
    recover_prob: float
    first_round: int = 1
    last_round: int | None = None
    buffer_policy: str = "preserved"

    def __post_init__(self) -> None:
        if not 0.0 < self.crash_prob <= 1.0:
            raise ConfigurationError(f"crash_prob must be in (0, 1], got {self.crash_prob}")
        if not 0.0 < self.recover_prob <= 1.0:
            raise ConfigurationError(f"recover_prob must be in (0, 1], got {self.recover_prob}")
        if self.first_round < 1:
            raise ConfigurationError(f"first_round must be >= 1, got {self.first_round}")
        if self.last_round is not None and self.last_round < self.first_round:
            raise ConfigurationError(
                f"last_round {self.last_round} precedes first_round {self.first_round}"
            )
        _check_buffer_policy(self.buffer_policy)


@dataclass(frozen=True)
class CapacityDegradation:
    """A window during which a ``fraction`` of entities runs with a reduced
    capacity (``c`` drops for ``duration`` rounds, then the previous
    per-entity capacity is restored).

    Existing queue contents are never truncated — an over-full entity simply
    stops accepting until it drains below the degraded capacity.
    """

    at_round: int
    duration: int
    capacity: int
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.at_round < 1:
            raise ConfigurationError(f"at_round must be >= 1, got {self.at_round}")
        if self.duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {self.duration}")
        if self.capacity < 1:
            raise ConfigurationError(f"degraded capacity must be >= 1, got {self.capacity}")
        _check_fraction(self.fraction)


@dataclass(frozen=True)
class RequestDrop:
    """Drop a ``fraction`` of the *youngest* pool/pending entries at
    ``at_round`` (e.g. an admission-control shed or a lossy network hiccup).

    Dropping youngest-first models real request shedding (old requests are
    already owed service) and keeps the oldest-first acceptance analysis
    intact.
    """

    at_round: int
    fraction: float

    def __post_init__(self) -> None:
        if self.at_round < 1:
            raise ConfigurationError(f"at_round must be >= 1, got {self.at_round}")
        _check_fraction(self.fraction)


FaultEvent = Union[CrashBurst, PeriodicOutage, StochasticCrashes, CapacityDegradation, RequestDrop]

_EVENT_TYPES = (
    CrashBurst,
    PeriodicOutage,
    StochasticCrashes,
    CapacityDegradation,
    RequestDrop,
)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable list of fault events plus the injector seed.

    The seed drives *all* stochastic choices (crash victim selection,
    stochastic crash/recover coin flips) through a dedicated RNG stream, so
    a (schedule, process-seed) pair fully determines a faulty run.
    """

    events: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, _EVENT_TYPES):
                raise ConfigurationError(f"unknown fault event type: {type(event).__name__}")
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        return bool(self.events)
